// Tests for μ-cuDNN's core: batch-size policies, the WR dynamic program
// (against brute force), Pareto/desirable-set properties (§III-C1 including
// the paper's optimality lemma), WD optimization, the benchmark cache, and
// the UcudnnHandle wrapper end-to-end (numeric equivalence of micro-batched
// execution, virtual-mode timing, workspace accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>

#include "core/benchmark_cache.h"
#include "core/benchmarker.h"
#include "core/options.h"
#include "core/types.h"
#include "core/ucudnn.h"
#include "core/wd_optimizer.h"
#include "core/wr_optimizer.h"
#include "tensor/tensor.h"

namespace ucudnn::core {
namespace {

using kernels::ConvProblem;

std::shared_ptr<device::Device> p100() {
  return std::make_shared<device::Device>(device::p100_sxm2_spec());
}

ConvProblem conv2_like(std::int64_t batch) {
  return ConvProblem({batch, 96, 27, 27}, {256, 96, 5, 5},
                     {.pad_h = 2, .pad_w = 2});
}

ConvProblem small_problem(std::int64_t batch) {
  return ConvProblem({batch, 8, 12, 12}, {8, 8, 3, 3}, {.pad_h = 1, .pad_w = 1});
}

Benchmarker make_benchmarker() {
  return Benchmarker({mcudnn::Handle(p100())},
                     std::make_shared<BenchmarkCache>());
}

// ---------------------------------------------------------------- policies

TEST(PolicyTest, CandidateSizes) {
  EXPECT_EQ(candidate_micro_sizes(BatchSizePolicy::kAll, 5),
            (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(candidate_micro_sizes(BatchSizePolicy::kPowerOfTwo, 8),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(candidate_micro_sizes(BatchSizePolicy::kPowerOfTwo, 12),
            (std::vector<std::int64_t>{1, 2, 4, 8, 12}));
  EXPECT_EQ(candidate_micro_sizes(BatchSizePolicy::kUndivided, 7),
            (std::vector<std::int64_t>{7}));
  EXPECT_THROW(candidate_micro_sizes(BatchSizePolicy::kAll, 0), Error);
}

TEST(PolicyTest, Parsing) {
  EXPECT_EQ(parse_batch_size_policy("all"), BatchSizePolicy::kAll);
  EXPECT_EQ(parse_batch_size_policy("powerOfTwo"), BatchSizePolicy::kPowerOfTwo);
  EXPECT_EQ(parse_batch_size_policy("undivided"), BatchSizePolicy::kUndivided);
  EXPECT_THROW(parse_batch_size_policy("bogus"), Error);
  EXPECT_EQ(parse_workspace_policy("wr"), WorkspacePolicy::kWR);
  EXPECT_EQ(parse_workspace_policy("WD"), WorkspacePolicy::kWD);
  EXPECT_THROW(parse_workspace_policy("x"), Error);
}

TEST(ConfigurationTest, AppendAccumulates) {
  Configuration c;
  c.append({1, 64, 2.0, 100});
  c.append({2, 64, 3.0, 50});
  c.append({1, 128, 4.0, 80});
  EXPECT_EQ(c.batch, 256);
  EXPECT_DOUBLE_EQ(c.time_ms, 9.0);
  EXPECT_EQ(c.workspace, 100u);  // max, not sum: sequential reuse
  EXPECT_EQ(c.size(), 3u);
}

// ------------------------------------------------------------- benchmarker

TEST(BenchmarkerTest, ProducesTablePerCandidateSize) {
  Benchmarker bench = make_benchmarker();
  const auto table = bench.run(ConvKernelType::kForward, small_problem(8),
                               BatchSizePolicy::kPowerOfTwo);
  ASSERT_EQ(table.sizes.size(), 4u);  // 1, 2, 4, 8
  for (const auto& perfs : table.perfs) {
    EXPECT_FALSE(perfs.empty());
    for (const auto& perf : perfs) {
      EXPECT_EQ(perf.status, Status::kSuccess);
      EXPECT_GT(perf.time_ms, 0.0);
    }
  }
}

TEST(BenchmarkerTest, CachesResults) {
  Benchmarker bench = make_benchmarker();
  bench.run(ConvKernelType::kForward, small_problem(8),
            BatchSizePolicy::kPowerOfTwo);
  const std::size_t after_first = bench.cache()->size();
  EXPECT_EQ(after_first, 4u);
  bench.run(ConvKernelType::kForward, small_problem(8),
            BatchSizePolicy::kPowerOfTwo);
  EXPECT_EQ(bench.cache()->size(), after_first);  // no new entries
}

TEST(BenchmarkerTest, ParallelDevicesAgreeWithSingle) {
  device::Node node(device::p100_sxm2_spec(), 4);
  std::vector<mcudnn::Handle> handles;
  for (const auto& dev : node.devices()) handles.emplace_back(dev);
  Benchmarker multi(handles, std::make_shared<BenchmarkCache>());
  Benchmarker single = make_benchmarker();
  const auto a = multi.run(ConvKernelType::kForward, small_problem(16),
                           BatchSizePolicy::kAll);
  const auto b = single.run(ConvKernelType::kForward, small_problem(16),
                            BatchSizePolicy::kAll);
  ASSERT_EQ(a.sizes, b.sizes);
  for (std::size_t i = 0; i < a.perfs.size(); ++i) {
    ASSERT_EQ(a.perfs[i].size(), b.perfs[i].size());
    for (std::size_t j = 0; j < a.perfs[i].size(); ++j) {
      EXPECT_EQ(a.perfs[i][j].algo, b.perfs[i][j].algo);
      EXPECT_DOUBLE_EQ(a.perfs[i][j].time_ms, b.perfs[i][j].time_ms);
    }
  }
}

TEST(BenchmarkerTest, HeterogeneousDevicesKeyResultsByMeasuringDevice) {
  // Regression: all cache traffic used to be keyed by handles_[0]'s device
  // name, so with a heterogeneous handle set the results measured on device
  // w landed under device 0's name — and later runs on either model silently
  // reused the other model's timings.
  auto k80 = std::make_shared<device::Device>(device::k80_spec());
  std::vector<mcudnn::Handle> handles;
  handles.emplace_back(p100());
  handles.emplace_back(k80);
  auto cache = std::make_shared<BenchmarkCache>();
  Benchmarker hetero(std::move(handles), cache);
  const ConvProblem p = small_problem(8);
  const auto table =
      hetero.run(ConvKernelType::kForward, p, BatchSizePolicy::kPowerOfTwo);
  ASSERT_EQ(table.sizes.size(), 4u);  // 1, 2, 4, 8

  const std::string p100_name = device::p100_sxm2_spec().name;
  const std::string k80_name = device::k80_spec().name;
  // Candidate i is measured (round-robin) on handle i % 2 and must be cached
  // under that handle's device name only.
  for (std::size_t i = 0; i < table.sizes.size(); ++i) {
    const std::string& measuring = i % 2 == 0 ? p100_name : k80_name;
    const std::string& other = i % 2 == 0 ? k80_name : p100_name;
    EXPECT_TRUE(cache
                    ->lookup(measuring, ConvKernelType::kForward, p,
                             table.sizes[i])
                    .has_value())
        << "size " << table.sizes[i];
    EXPECT_FALSE(
        cache->lookup(other, ConvKernelType::kForward, p, table.sizes[i])
            .has_value())
        << "size " << table.sizes[i];
  }

  // The K80-measured candidates must carry genuine K80 timings.
  Benchmarker k80_only({mcudnn::Handle(k80)},
                       std::make_shared<BenchmarkCache>());
  const auto reference =
      k80_only.run(ConvKernelType::kForward, p, BatchSizePolicy::kPowerOfTwo);
  for (std::size_t i = 1; i < table.sizes.size(); i += 2) {
    ASSERT_EQ(table.perfs[i].size(), reference.perfs[i].size());
    for (std::size_t j = 0; j < table.perfs[i].size(); ++j) {
      EXPECT_EQ(table.perfs[i][j].algo, reference.perfs[i][j].algo);
      EXPECT_DOUBLE_EQ(table.perfs[i][j].time_ms,
                       reference.perfs[i][j].time_ms);
    }
  }
}

TEST(BenchmarkerTest, HeterogeneousBlacklistFiltersPerDevice) {
  // Companion regression: the blacklist filter must also be keyed by the
  // measuring device. A blacklist entry for the K80 must drop the algorithm
  // from K80-measured candidates only, never from the P100-measured ones.
  const ConvProblem p = small_problem(8);
  auto p100_dev = p100();
  auto k80_dev = std::make_shared<device::Device>(device::k80_spec());

  // Pick an algorithm supported at every candidate size on both models.
  Benchmarker p100_ref({mcudnn::Handle(p100_dev)},
                       std::make_shared<BenchmarkCache>());
  Benchmarker k80_ref({mcudnn::Handle(k80_dev)},
                      std::make_shared<BenchmarkCache>());
  const auto ref_a =
      p100_ref.run(ConvKernelType::kForward, p, BatchSizePolicy::kPowerOfTwo);
  const auto ref_b =
      k80_ref.run(ConvKernelType::kForward, p, BatchSizePolicy::kPowerOfTwo);
  const auto supported_everywhere = [&](int algo) {
    for (const auto* table : {&ref_a, &ref_b}) {
      for (const auto& perfs : table->perfs) {
        if (std::none_of(
                perfs.begin(), perfs.end(),
                [&](const mcudnn::AlgoPerf& perf) { return perf.algo == algo; }))
          return false;
      }
    }
    return true;
  };
  int victim = -1;
  for (const auto& perf : ref_a.perfs[0]) {
    if (supported_everywhere(perf.algo)) {
      victim = perf.algo;
      break;
    }
  }
  ASSERT_NE(victim, -1) << "no algorithm common to all sizes on both models";

  auto cache = std::make_shared<BenchmarkCache>();
  cache->blacklist(device::k80_spec().name, ConvKernelType::kForward, victim);
  std::vector<mcudnn::Handle> handles;
  handles.emplace_back(p100_dev);
  handles.emplace_back(k80_dev);
  Benchmarker hetero(std::move(handles), cache);
  const auto table =
      hetero.run(ConvKernelType::kForward, p, BatchSizePolicy::kPowerOfTwo);
  for (std::size_t i = 0; i < table.sizes.size(); ++i) {
    const bool has_victim = std::any_of(
        table.perfs[i].begin(), table.perfs[i].end(),
        [&](const mcudnn::AlgoPerf& perf) { return perf.algo == victim; });
    if (i % 2 == 0) {
      EXPECT_TRUE(has_victim) << "P100-measured size " << table.sizes[i];
    } else {
      EXPECT_FALSE(has_victim) << "K80-measured size " << table.sizes[i];
    }
  }
}

TEST(BenchmarkerTest, FullyBlacklistedCacheHitRebenchmarks) {
  // Regression: when the blacklist filtered a cached entry down to nothing,
  // lookup() used to return the empty vector — a "hit" claiming the problem
  // supports no algorithms at all — and run() handed that empty table to the
  // optimizer. Such a hit must degrade to a miss and re-benchmark instead.
  const ConvProblem p = small_problem(8);
  Benchmarker fresh = make_benchmarker();
  const auto full =
      fresh.run(ConvKernelType::kForward, p, BatchSizePolicy::kPowerOfTwo);

  const std::string device = device::p100_sxm2_spec().name;
  auto cache = std::make_shared<BenchmarkCache>();
  std::set<int> blacklisted;
  for (std::size_t i = 0; i < full.sizes.size(); ++i) {
    ASSERT_GT(full.perfs[i].size(), 1u);  // re-benchmarking must find others
    cache->store(device, ConvKernelType::kForward, p, full.sizes[i],
                 {full.perfs[i][0]});
    cache->blacklist(device, ConvKernelType::kForward, full.perfs[i][0].algo);
    blacklisted.insert(full.perfs[i][0].algo);
  }

  Benchmarker bench({mcudnn::Handle(p100())}, cache);
  const auto table =
      bench.run(ConvKernelType::kForward, p, BatchSizePolicy::kPowerOfTwo);
  for (std::size_t i = 0; i < table.sizes.size(); ++i) {
    EXPECT_FALSE(table.perfs[i].empty()) << "size " << table.sizes[i];
    for (const auto& perf : table.perfs[i]) {
      EXPECT_EQ(blacklisted.count(perf.algo), 0u) << "algo " << perf.algo;
    }
  }
}

// ---------------------------------------------------------------------- WR

// Brute-force minimum over all ordered divisions of `batch` (small batches).
double brute_force_wr(const MicroBenchmark& bench, std::int64_t batch,
                      std::size_t ws_limit) {
  if (batch == 0) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < bench.sizes.size(); ++i) {
    if (bench.sizes[i] > batch) continue;
    double t_best = std::numeric_limits<double>::infinity();
    for (const auto& perf : bench.perfs[i]) {
      if (perf.memory <= ws_limit) t_best = std::min(t_best, perf.time_ms);
    }
    if (!std::isfinite(t_best)) continue;
    best = std::min(best,
                    t_best + brute_force_wr(bench, batch - bench.sizes[i],
                                            ws_limit));
  }
  return best;
}

TEST(WrOptimizerTest, MatchesBruteForce) {
  Benchmarker bench = make_benchmarker();
  const auto table = bench.run(ConvKernelType::kForward, conv2_like(12),
                               BatchSizePolicy::kAll);
  for (const std::size_t limit :
       {std::size_t{0}, std::size_t{1} << 20, std::size_t{16} << 20,
        std::size_t{256} << 20}) {
    const Configuration config = optimize_wr(table, 12, limit);
    EXPECT_EQ(config.batch, 12);
    EXPECT_LE(config.workspace, limit);
    const double expected = brute_force_wr(table, 12, limit);
    EXPECT_NEAR(config.time_ms, expected, 1e-9) << "limit=" << limit;
  }
}

TEST(WrOptimizerTest, UndividedMatchesCudnnChoice) {
  // With the undivided policy, WR must pick exactly what cuDNN's
  // GetAlgorithm picks for the same limit (§III-D).
  Benchmarker bench = make_benchmarker();
  mcudnn::Handle handle(p100());
  const ConvProblem p = conv2_like(64);
  const std::size_t limit = std::size_t{64} << 20;
  const auto table =
      bench.run(ConvKernelType::kForward, p, BatchSizePolicy::kUndivided);
  const Configuration config = optimize_wr(table, 64, limit);
  ASSERT_EQ(config.size(), 1u);
  EXPECT_EQ(config.micro[0].batch, 64);
  const int cudnn_algo = mcudnn::get_algorithm(
      handle, ConvKernelType::kForward, p,
      mcudnn::AlgoPreference::kSpecifyWorkspaceLimit, limit);
  EXPECT_EQ(config.micro[0].algo, cudnn_algo);
}

TEST(WrOptimizerTest, LargerLimitNeverSlower) {
  Benchmarker bench = make_benchmarker();
  const auto table = bench.run(ConvKernelType::kForward, conv2_like(32),
                               BatchSizePolicy::kPowerOfTwo);
  double prev = std::numeric_limits<double>::infinity();
  for (const std::size_t limit_mib : {1, 8, 64, 512}) {
    const Configuration config =
        optimize_wr(table, 32, std::size_t{limit_mib} << 20);
    EXPECT_LE(config.time_ms, prev + 1e-12) << limit_mib << " MiB";
    prev = config.time_ms;
  }
}

TEST(WrOptimizerTest, TightWorkspaceEnablesFasterAlgosViaSplitting) {
  // The headline effect: under a moderate limit, dividing the batch beats
  // the undivided (cuDNN-equivalent) choice.
  Benchmarker bench = make_benchmarker();
  const ConvProblem p = conv2_like(256);
  const std::size_t limit = std::size_t{64} << 20;
  const auto undivided_table =
      bench.run(ConvKernelType::kForward, p, BatchSizePolicy::kUndivided);
  const auto pow2_table =
      bench.run(ConvKernelType::kForward, p, BatchSizePolicy::kPowerOfTwo);
  const Configuration undivided = optimize_wr(undivided_table, 256, limit);
  const Configuration divided = optimize_wr(pow2_table, 256, limit);
  EXPECT_LT(divided.time_ms, undivided.time_ms);
  EXPECT_GT(divided.size(), 1u);
}

TEST(WrOptimizerTest, ZeroLimitFallsBackToZeroWorkspaceAlgos) {
  Benchmarker bench = make_benchmarker();
  const auto table = bench.run(ConvKernelType::kForward, small_problem(8),
                               BatchSizePolicy::kPowerOfTwo);
  const Configuration config = optimize_wr(table, 8, 0);
  EXPECT_EQ(config.workspace, 0u);
  for (const auto& micro : config.micro) EXPECT_EQ(micro.workspace, 0u);
}

// -------------------------------------------------------------- Pareto / WD

TEST(ParetoTest, PruneKeepsOnlyNonDominated) {
  std::vector<Configuration> configs;
  auto make = [](double time, std::size_t ws) {
    Configuration c;
    c.append({0, 1, time, ws});
    return c;
  };
  configs = {make(5, 100), make(3, 200), make(4, 150), make(6, 50),
             make(3.5, 400), make(2.9, 300)};
  pareto_prune(configs);
  // Expected front: (50,6), (100,5), (150,4), (200,3), (300,2.9).
  ASSERT_EQ(configs.size(), 5u);
  for (std::size_t i = 1; i < configs.size(); ++i) {
    EXPECT_GT(configs[i].workspace, configs[i - 1].workspace);
    EXPECT_LT(configs[i].time_ms, configs[i - 1].time_ms);
  }
}

TEST(ParetoTest, DesirableSetIsAParetoFront) {
  Benchmarker bench = make_benchmarker();
  const auto table = bench.run(ConvKernelType::kForward, conv2_like(64),
                               BatchSizePolicy::kPowerOfTwo);
  const auto front =
      desirable_configurations(table, 64, std::size_t{120} << 20);
  ASSERT_GE(front.size(), 2u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].workspace, front[i - 1].workspace);
    EXPECT_LT(front[i].time_ms, front[i - 1].time_ms);
    EXPECT_EQ(front[i].batch, 64);
  }
}

TEST(ParetoTest, FrontContainsTheWrOptimum) {
  // The paper notes D(B) contains the WR solution for any limit <= cap.
  Benchmarker bench = make_benchmarker();
  const auto table = bench.run(ConvKernelType::kForward, conv2_like(32),
                               BatchSizePolicy::kPowerOfTwo);
  const std::size_t cap = std::size_t{120} << 20;
  const auto front = desirable_configurations(table, 32, cap);
  for (const std::size_t limit_mib : {1, 8, 64, 120}) {
    const std::size_t limit = std::size_t{limit_mib} << 20;
    const Configuration wr = optimize_wr(table, 32, limit);
    // Best front element within the limit must match the WR optimum time.
    double best = std::numeric_limits<double>::infinity();
    for (const auto& config : front) {
      if (config.workspace <= limit) best = std::min(best, config.time_ms);
    }
    EXPECT_NEAR(best, wr.time_ms, 1e-9) << limit_mib << " MiB";
  }
}

TEST(WdOptimizerTest, RespectsTotalLimitAndAssignsDisjointSegments) {
  Benchmarker bench = make_benchmarker();
  std::vector<KernelRequest> requests;
  for (ConvKernelType type :
       {ConvKernelType::kForward, ConvKernelType::kBackwardData,
        ConvKernelType::kBackwardFilter}) {
    requests.push_back({type, conv2_like(64), "conv2"});
    requests.push_back({type, small_problem(64), "small"});
  }
  const std::size_t limit = std::size_t{100} << 20;
  const WdPlan plan = optimize_wd(bench, requests, limit,
                                  BatchSizePolicy::kPowerOfTwo,
                                  WdSolver::kMckpDp);
  ASSERT_EQ(plan.assignments.size(), requests.size());
  EXPECT_LE(plan.total_workspace, limit);
  // Segments must be disjoint and in-bounds.
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    const auto& a = plan.assignments[i];
    EXPECT_LE(a.offset + a.config.workspace, plan.total_workspace);
    for (std::size_t j = i + 1; j < plan.assignments.size(); ++j) {
      const auto& b = plan.assignments[j];
      const bool disjoint = a.offset + a.config.workspace <= b.offset ||
                            b.offset + b.config.workspace <= a.offset;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
}

TEST(WdOptimizerTest, DpAndIlpSolversAgree) {
  Benchmarker bench = make_benchmarker();
  std::vector<KernelRequest> requests = {
      {ConvKernelType::kForward, conv2_like(32), "a"},
      {ConvKernelType::kForward, small_problem(32), "b"},
      {ConvKernelType::kBackwardFilter, small_problem(32), "c"},
  };
  const std::size_t limit = std::size_t{60} << 20;
  const WdPlan dp = optimize_wd(bench, requests, limit,
                                BatchSizePolicy::kPowerOfTwo, WdSolver::kMckpDp);
  const WdPlan ilp =
      optimize_wd(bench, requests, limit, BatchSizePolicy::kPowerOfTwo,
                  WdSolver::kBranchBoundIlp);
  EXPECT_NEAR(dp.total_time_ms, ilp.total_time_ms, 1e-6);
}

TEST(WdOptimizerTest, BeatsUniformWrSplitAtEqualTotalWorkspace) {
  // §IV-D: WD with total budget W outperforms WR giving each kernel W/K.
  Benchmarker bench = make_benchmarker();
  std::vector<KernelRequest> requests;
  // Kernels with very different appetite for workspace.
  requests.push_back({ConvKernelType::kForward, conv2_like(128), "hungry"});
  requests.push_back({ConvKernelType::kForward, small_problem(128), "modest"});
  requests.push_back(
      {ConvKernelType::kForward,
       ConvProblem({128, 16, 6, 6}, {16, 16, 1, 1}, {}), "tiny"});

  const std::size_t total = std::size_t{96} << 20;
  const WdPlan wd = optimize_wd(bench, requests, total,
                                BatchSizePolicy::kPowerOfTwo, WdSolver::kMckpDp);

  double wr_total = 0.0;
  const std::size_t per_kernel = total / requests.size();
  for (const auto& request : requests) {
    const auto table = bench.run(request.type, request.problem,
                                 BatchSizePolicy::kPowerOfTwo);
    wr_total +=
        optimize_wr(table, request.problem.batch(), per_kernel).time_ms;
  }
  EXPECT_LE(wd.total_time_ms, wr_total + 1e-9);
}

TEST(WdOptimizerTest, ParetoPruningShrinksTheIlp) {
  Benchmarker bench = make_benchmarker();
  std::vector<KernelRequest> requests = {
      {ConvKernelType::kForward, conv2_like(64), "conv2"}};
  const WdPlan plan = optimize_wd(bench, requests, std::size_t{120} << 20,
                                  BatchSizePolicy::kPowerOfTwo,
                                  WdSolver::kMckpDp);
  EXPECT_GT(plan.num_variables, 0u);
  EXPECT_LT(plan.num_variables, 100u);  // paper: max 68 for AlexNet layers
}

// -------------------------------------------------------------------- cache

TEST(BenchmarkCacheTest, FileRoundTrip) {
  BenchmarkCache cache;
  const ConvProblem p = small_problem(8);
  std::vector<mcudnn::AlgoPerf> perfs(2);
  perfs[0] = {3, Status::kSuccess, 1.25, 4096};
  perfs[1] = {1, Status::kSuccess, 2.5, 0};
  cache.store("P100-SXM2", ConvKernelType::kForward, p, 8, perfs);

  const std::string path =
      (std::filesystem::temp_directory_path() / "ucudnn_cache_test.db")
          .string();
  cache.save_file(path);

  BenchmarkCache loaded;
  EXPECT_EQ(loaded.load_file(path), CacheLoadResult::kLoaded);
  EXPECT_EQ(loaded.size(), 1u);
  const auto hit = loaded.lookup("P100-SXM2", ConvKernelType::kForward, p, 8);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[0].algo, 3);
  EXPECT_DOUBLE_EQ((*hit)[0].time_ms, 1.25);
  EXPECT_EQ((*hit)[1].memory, 0u);
  std::remove(path.c_str());
}

TEST(BenchmarkCacheTest, KeysDistinguishEverything) {
  BenchmarkCache cache;
  const ConvProblem p = small_problem(8);
  const std::vector<mcudnn::AlgoPerf> perfs(1);
  cache.store("P100-SXM2", ConvKernelType::kForward, p, 8, perfs);
  EXPECT_FALSE(cache.lookup("K80", ConvKernelType::kForward, p, 8));
  EXPECT_FALSE(cache.lookup("P100-SXM2", ConvKernelType::kBackwardData, p, 8));
  EXPECT_FALSE(cache.lookup("P100-SXM2", ConvKernelType::kForward, p, 4));
  EXPECT_FALSE(cache.lookup("P100-SXM2", ConvKernelType::kForward,
                            small_problem(16), 8));
  EXPECT_TRUE(cache.lookup("P100-SXM2", ConvKernelType::kForward, p, 8));
}

TEST(BenchmarkCacheTest, MissingFileIgnoredMalformedQuarantined) {
  BenchmarkCache cache;
  EXPECT_EQ(cache.load_file("/nonexistent/ucudnn.db"),
            CacheLoadResult::kMissing);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ucudnn_bad.db").string();
  {
    std::ofstream out(path);
    out << "garbage-without-tab\n";
  }
  // A damaged database must never abort a run: it is renamed aside with a
  // warning and the cache stays empty.
  EXPECT_EQ(cache.load_file(path), CacheLoadResult::kQuarantined);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  std::remove((path + ".corrupt").c_str());

  // A well-formed line whose value field carries trailing garbage is
  // corruption too — it must quarantine, not load a truncated entry.
  {
    std::ofstream out(path);
    out << "somekey\t0:0:1.5:64junk\n";
  }
  EXPECT_EQ(cache.load_file(path), CacheLoadResult::kQuarantined);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  std::remove((path + ".corrupt").c_str());
}

TEST(BenchmarkCacheTest, EncodeDecodeEmpty) {
  EXPECT_TRUE(BenchmarkCache::decode_perfs("").empty());
  EXPECT_EQ(BenchmarkCache::encode_perfs({}), "");
}

TEST(BenchmarkCacheTest, DecodeRejectsTrailingGarbage) {
  // Regression: operator>> stops at the first non-numeric byte without
  // setting failbit, so "64junk" used to decode as memory=64 with the junk
  // silently dropped — a damaged entry loaded as if it were intact.
  const auto one = BenchmarkCache::decode_perfs("0:0:1.5:64");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].memory, 64u);
  EXPECT_EQ(BenchmarkCache::decode_perfs("3:0:1.25:4096,1:0:2.5:0").size(), 2u);
  EXPECT_THROW(BenchmarkCache::decode_perfs("0:0:1.5:64junk"), Error);
  EXPECT_THROW(BenchmarkCache::decode_perfs("0:0:1.5:64 "), Error);
  EXPECT_THROW(BenchmarkCache::decode_perfs("0:0:1.5junk:64"), Error);
}

// ------------------------------------------------------------------ options

TEST(OptionsTest, EnvRoundTrip) {
  ::setenv("UCUDNN_BATCH_SIZE_POLICY", "all", 1);
  ::setenv("UCUDNN_WORKSPACE_POLICY", "wd", 1);
  ::setenv("UCUDNN_WORKSPACE_LIMIT", "64M", 1);
  ::setenv("UCUDNN_TOTAL_WORKSPACE_SIZE", "120M", 1);
  ::setenv("UCUDNN_WD_SOLVER", "ilp", 1);
  ::setenv("UCUDNN_BENCHMARK_DEVICES", "4", 1);
  const Options opts = Options::from_env();
  EXPECT_EQ(opts.batch_size_policy, BatchSizePolicy::kAll);
  EXPECT_EQ(opts.workspace_policy, WorkspacePolicy::kWD);
  ASSERT_TRUE(opts.workspace_limit.has_value());
  EXPECT_EQ(*opts.workspace_limit, std::size_t{64} << 20);
  EXPECT_EQ(opts.total_workspace_size, std::size_t{120} << 20);
  EXPECT_EQ(opts.wd_solver, WdSolver::kBranchBoundIlp);
  EXPECT_EQ(opts.benchmark_devices, 4);
  for (const char* name :
       {"UCUDNN_BATCH_SIZE_POLICY", "UCUDNN_WORKSPACE_POLICY",
        "UCUDNN_WORKSPACE_LIMIT", "UCUDNN_TOTAL_WORKSPACE_SIZE",
        "UCUDNN_WD_SOLVER", "UCUDNN_BENCHMARK_DEVICES"}) {
    ::unsetenv(name);
  }
  const Options defaults = Options::from_env();
  EXPECT_EQ(defaults.batch_size_policy, BatchSizePolicy::kPowerOfTwo);
  EXPECT_EQ(defaults.workspace_policy, WorkspacePolicy::kWR);
  EXPECT_FALSE(defaults.workspace_limit.has_value());
}

// ------------------------------------------------------------ UcudnnHandle

Options wr_options(std::size_t limit, BatchSizePolicy policy) {
  Options opts;
  opts.batch_size_policy = policy;
  opts.workspace_limit = limit;
  return opts;
}

TEST(UcudnnHandleTest, ReportsZeroWorkspaceAndVirtualAlgo) {
  UcudnnHandle handle(p100(), wr_options(64 << 20, BatchSizePolicy::kPowerOfTwo));
  const ConvProblem p = conv2_like(64);
  EXPECT_EQ(handle.workspace_size(ConvKernelType::kForward, p, 5), 0u);
  EXPECT_EQ(handle.get_algorithm(ConvKernelType::kForward, p,
                                 mcudnn::AlgoPreference::kSpecifyWorkspaceLimit,
                                 8 << 20),
            kVirtualAlgo);
  EXPECT_EQ(handle.recorded_kernels().size(), 1u);
}

TEST(UcudnnHandleTest, CastOperatorExposesBaseHandle) {
  UcudnnHandle handle(p100(), wr_options(64 << 20, BatchSizePolicy::kPowerOfTwo));
  mcudnn::Handle& base = handle;  // the paper's integration trick
  EXPECT_EQ(base.device().spec().name, "P100-SXM2");
}

TEST(UcudnnHandleTest, MicroBatchedNumericEqualsUndivided) {
  // End-to-end numeric check on the host CPU: the wrapper's micro-batched
  // execution must match a plain full-batch convolution bit-for-tolerance.
  auto cpu = std::make_shared<device::Device>(device::host_cpu_spec());
  UcudnnHandle handle(cpu, wr_options(std::size_t{1} << 20,
                                      BatchSizePolicy::kPowerOfTwo));
  const ConvProblem p({8, 6, 10, 10}, {6, 6, 3, 3}, {.pad_h = 1, .pad_w = 1});

  Tensor x(p.x), w(TensorShape{p.w.k, p.w.c, p.w.r, p.w.s});
  Tensor y(p.y), y_ref(p.y), dy(p.y), dx(p.x), dx_ref(p.x);
  Tensor dw(TensorShape{p.w.k, p.w.c, p.w.r, p.w.s});
  Tensor dw_ref(TensorShape{p.w.k, p.w.c, p.w.r, p.w.s});
  fill_random(x, 1);
  fill_random(w, 2);
  fill_random(dy, 3);

  handle.convolution(ConvKernelType::kForward, p, 1.0f, x.data(), w.data(),
                     0.0f, y.data());
  handle.convolution(ConvKernelType::kBackwardData, p, 1.0f, dy.data(),
                     w.data(), 0.0f, dx.data());
  handle.convolution(ConvKernelType::kBackwardFilter, p, 1.0f, x.data(),
                     dy.data(), 0.0f, dw.data());

  kernels::execute(ConvKernelType::kForward, kernels::fwd_algo::kDirect, p,
                   x.data(), w.data(), y_ref.data(), 1.0f, 0.0f, nullptr, 0);
  kernels::execute(ConvKernelType::kBackwardData, kernels::bwd_data_algo::kAlgo0,
                   p, dy.data(), w.data(), dx_ref.data(), 1.0f, 0.0f, nullptr,
                   0);
  kernels::execute(ConvKernelType::kBackwardFilter,
                   kernels::bwd_filter_algo::kAlgo0, p, x.data(), dy.data(),
                   dw_ref.data(), 1.0f, 0.0f, nullptr, 0);

  EXPECT_LT(max_rel_diff(y.data(), y_ref.data(), p.y.count()), 5e-3);
  EXPECT_LT(max_rel_diff(dx.data(), dx_ref.data(), p.x.count()), 5e-3);
  EXPECT_LT(max_rel_diff(dw.data(), dw_ref.data(), p.w.count()), 5e-3);
}

TEST(UcudnnHandleTest, VirtualExecutionIsFasterWithLargerLimit) {
  // Modeled iteration time must improve when the workspace limit loosens.
  const ConvProblem p = conv2_like(256);
  double tight_ms = 0.0, loose_ms = 0.0;
  for (const bool loose : {false, true}) {
    auto dev = p100();
    UcudnnHandle handle(
        dev, wr_options(loose ? (std::size_t{512} << 20) : (1 << 20),
                        BatchSizePolicy::kPowerOfTwo));
    handle.convolution(ConvKernelType::kForward, p, 1.0f, nullptr, nullptr,
                       0.0f, nullptr);
    (loose ? loose_ms : tight_ms) = dev->clock_ms();
  }
  EXPECT_LT(loose_ms, tight_ms);
}

TEST(UcudnnHandleTest, WorkspaceIsAllocatedOnDeviceAndBounded) {
  auto dev = p100();
  const std::size_t limit = std::size_t{64} << 20;
  UcudnnHandle handle(dev, wr_options(limit, BatchSizePolicy::kPowerOfTwo));
  const ConvProblem p = conv2_like(256);
  handle.convolution(ConvKernelType::kForward, p, 1.0f, nullptr, nullptr, 0.0f,
                     nullptr);
  const Configuration* config =
      handle.configuration_for(ConvKernelType::kForward, p);
  ASSERT_NE(config, nullptr);
  EXPECT_LE(config->workspace, limit);
  EXPECT_EQ(dev->bytes_in_use(), config->workspace);
}

TEST(UcudnnHandleTest, WdEndToEnd) {
  auto dev = p100();
  Options opts;
  opts.workspace_policy = WorkspacePolicy::kWD;
  opts.total_workspace_size = std::size_t{120} << 20;
  opts.batch_size_policy = BatchSizePolicy::kPowerOfTwo;
  UcudnnHandle handle(dev, opts);

  std::vector<ConvProblem> problems = {conv2_like(64), small_problem(64)};
  for (const auto& p : problems) {
    for (ConvKernelType type :
         {ConvKernelType::kForward, ConvKernelType::kBackwardData,
          ConvKernelType::kBackwardFilter}) {
      handle.get_algorithm(type, p, mcudnn::AlgoPreference::kPreferFastest,
                           0);
    }
  }
  EXPECT_EQ(handle.recorded_kernels().size(), 6u);
  EXPECT_FALSE(handle.wd_finalized());

  // First convolution triggers WD optimization.
  handle.convolution(ConvKernelType::kForward, problems[0], 1.0f, nullptr,
                     nullptr, 0.0f, nullptr);
  ASSERT_TRUE(handle.wd_finalized());
  const WdPlan* plan = handle.wd_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->assignments.size(), 6u);
  EXPECT_LE(plan->total_workspace, opts.total_workspace_size);
  EXPECT_EQ(dev->usage_by_tag().at("wd_arena"), plan->total_workspace);

  // All kernels runnable afterwards.
  for (const auto& p : problems) {
    handle.convolution(ConvKernelType::kBackwardData, p, 1.0f, nullptr,
                       nullptr, 0.0f, nullptr);
    handle.convolution(ConvKernelType::kBackwardFilter, p, 1.0f, nullptr,
                       nullptr, 0.0f, nullptr);
  }
  // Post-finalization queries are ignored but harmless.
  EXPECT_EQ(handle.get_algorithm(ConvKernelType::kForward, problems[0],
                                 mcudnn::AlgoPreference::kPreferFastest, 0),
            kVirtualAlgo);
}

TEST(UcudnnHandleTest, WdNumericCorrectness) {
  auto cpu = std::make_shared<device::Device>(device::host_cpu_spec());
  Options opts;
  opts.workspace_policy = WorkspacePolicy::kWD;
  opts.total_workspace_size = std::size_t{4} << 20;
  opts.batch_size_policy = BatchSizePolicy::kPowerOfTwo;
  UcudnnHandle handle(cpu, opts);

  const ConvProblem p({6, 4, 9, 9}, {5, 4, 3, 3}, {.pad_h = 1, .pad_w = 1});
  handle.get_algorithm(ConvKernelType::kForward, p,
                       mcudnn::AlgoPreference::kPreferFastest, 0);

  Tensor x(p.x), w(TensorShape{p.w.k, p.w.c, p.w.r, p.w.s}), y(p.y), y_ref(p.y);
  fill_random(x, 4);
  fill_random(w, 5);
  handle.convolution(ConvKernelType::kForward, p, 1.0f, x.data(), w.data(),
                     0.0f, y.data());
  kernels::execute(ConvKernelType::kForward, kernels::fwd_algo::kDirect, p,
                   x.data(), w.data(), y_ref.data(), 1.0f, 0.0f, nullptr, 0);
  EXPECT_LT(max_rel_diff(y.data(), y_ref.data(), p.y.count()), 5e-3);
}

TEST(UcudnnHandleTest, OptimizationTimersAdvance) {
  UcudnnHandle handle(p100(), wr_options(64 << 20, BatchSizePolicy::kAll));
  handle.convolution(ConvKernelType::kForward, conv2_like(64), 1.0f, nullptr,
                     nullptr, 0.0f, nullptr);
  EXPECT_GT(handle.total_benchmark_ms(), 0.0);
  EXPECT_GE(handle.total_optimize_ms(), 0.0);
}

TEST(UcudnnHandleTest, CudnnShapedStatusApi) {
  UcudnnHandle handle(p100(), wr_options(64 << 20, BatchSizePolicy::kPowerOfTwo));
  const TensorDesc x{{64, 96, 27, 27}};
  const FilterDesc w{256, 96, 5, 5};
  const ConvGeometry conv{.pad_h = 2, .pad_w = 2};
  const TensorDesc y{{64, 256, 27, 27}};

  std::size_t bytes = 123;
  EXPECT_EQ(mcudnnGetConvolutionWorkspaceSize(handle, ConvKernelType::kForward,
                                              x, w, conv, y, 0, &bytes),
            Status::kSuccess);
  EXPECT_EQ(bytes, 0u);  // μ-cuDNN reports zero workspace
  int algo = -1;
  EXPECT_EQ(mcudnnGetConvolutionAlgorithm(
                handle, ConvKernelType::kForward, x, w, conv, y,
                mcudnn::AlgoPreference::kSpecifyWorkspaceLimit, 8 << 20, &algo),
            Status::kSuccess);
  EXPECT_EQ(algo, kVirtualAlgo);
  EXPECT_EQ(mcudnnConvolutionForward(handle, 1.0f, x, nullptr, w, nullptr,
                                     conv, algo, nullptr, 0, 0.0f, y, nullptr),
            Status::kSuccess);  // virtual mode: null data is fine
}

}  // namespace
}  // namespace ucudnn::core
