// Workspace-contract auditor tests: AuditedBuffer canary mechanics, the
// aliasing checker, deliberately misbehaving kernels registered in
// kernels::registry (overrun + under-declaration, both must be caught with a
// diagnostic naming the kernel and byte offset), and a clean-run pass over
// every registered algorithm confirming zero false positives.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "analysis/alias_check.h"
#include "analysis/workspace_audit.h"
#include "common/aligned_buffer.h"
#include "common/status.h"
#include "core/ucudnn.h"
#include "kernels/conv_problem.h"
#include "kernels/registry.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

using analysis::AuditedBuffer;
using analysis::MemSpan;

class WorkspaceAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    analysis::set_workspace_audit_enabled(true);
    analysis::reset_audit_stats();
  }
  void TearDown() override {
    kernels::clear_test_kernels();
    analysis::set_workspace_audit_enabled(false);
  }
};

// --- AuditedBuffer canary mechanics ---------------------------------------

TEST_F(WorkspaceAuditTest, CleanBufferVerifies) {
  AuditedBuffer buffer(256, "clean");
  auto* span = static_cast<unsigned char*>(buffer.data());
  std::memset(span, 0x11, 256);
  EXPECT_NO_THROW(buffer.verify());
  EXPECT_EQ(buffer.touched_bytes(), 256u);
}

TEST_F(WorkspaceAuditTest, UntouchedBufferHasZeroHighWater) {
  AuditedBuffer buffer(128, "untouched");
  EXPECT_NO_THROW(buffer.verify());
  EXPECT_EQ(buffer.touched_bytes(), 0u);
}

TEST_F(WorkspaceAuditTest, PartialTouchTracksHighWater) {
  AuditedBuffer buffer(512, "partial");
  auto* span = static_cast<unsigned char*>(buffer.data());
  std::memset(span, 0x22, 40);
  EXPECT_EQ(buffer.touched_bytes(), 40u);
  EXPECT_NO_THROW(buffer.verify());
}

TEST_F(WorkspaceAuditTest, OverrunIsDetectedWithOffset) {
  AuditedBuffer buffer(100, "overrunner");
  auto* span = static_cast<unsigned char*>(buffer.data());
  span[100] = 0x00;  // first byte past the declared span
  try {
    buffer.verify();
    FAIL() << "overrun not detected";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInternalError);
    EXPECT_NE(std::string(e.what()).find("overrunner"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("offset 100"), std::string::npos);
  }
}

TEST_F(WorkspaceAuditTest, UnderrunIsDetected) {
  AuditedBuffer buffer(64, "underrunner");
  auto* span = static_cast<unsigned char*>(buffer.data());
  *(span - 1) = 0x00;
  try {
    buffer.verify();
    FAIL() << "underrun not detected";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInternalError);
    EXPECT_NE(std::string(e.what()).find("underrunner"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("offset -1"), std::string::npos);
  }
}

TEST_F(WorkspaceAuditTest, ZeroByteDeclarationCatchesAnyWrite) {
  AuditedBuffer buffer(0, "zero_decl");
  EXPECT_NE(buffer.data(), nullptr);
  static_cast<unsigned char*>(buffer.data())[0] = 0x00;
  EXPECT_THROW(buffer.verify(), Error);
}

TEST_F(WorkspaceAuditTest, AuditStatsAccumulate) {
  analysis::record_audit("k1", 1000, 600);
  analysis::record_audit("k1", 1000, 800);
  analysis::record_audit("k2", 50, 50);
  const auto report = analysis::audit_report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report.at("k1").runs, 2u);
  EXPECT_EQ(report.at("k1").max_touched, 800u);
  EXPECT_EQ(report.at("k1").declared_bytes, 1000u);
  EXPECT_EQ(report.at("k1").min_slack, 200u);
  EXPECT_EQ(report.at("k2").max_touched, 50u);
  EXPECT_EQ(report.at("k2").min_slack, 0u);
}

TEST_F(WorkspaceAuditTest, ContextStackJoins) {
  EXPECT_EQ(analysis::current_audit_context(), "");
  const analysis::ScopedAuditContext outer("outer");
  EXPECT_EQ(analysis::current_audit_context(), "outer");
  {
    const analysis::ScopedAuditContext inner("inner");
    EXPECT_EQ(analysis::current_audit_context(), "outer/inner");
  }
  EXPECT_EQ(analysis::current_audit_context(), "outer");
}

// --- aliasing checker ------------------------------------------------------

TEST_F(WorkspaceAuditTest, DisjointSpansPass) {
  AlignedBuffer<float> a(64), b(64);
  EXPECT_NO_THROW(analysis::check_disjoint(
      {{a.data(), a.bytes(), "a"}, {b.data(), b.bytes(), "b"}}));
}

TEST_F(WorkspaceAuditTest, OverlappingSpansAreRejected) {
  AlignedBuffer<float> a(64);
  const MemSpan whole{a.data(), a.bytes(), "workspace"};
  const MemSpan inside{a.data() + 16, 16 * sizeof(float), "dw"};
  EXPECT_TRUE(analysis::spans_overlap(whole, inside));
  try {
    analysis::check_disjoint({whole, inside});
    FAIL() << "overlap not detected";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInternalError);
    EXPECT_NE(std::string(e.what()).find("workspace"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dw"), std::string::npos);
  }
}

TEST_F(WorkspaceAuditTest, NullAndEmptySpansNeverOverlap) {
  AlignedBuffer<float> a(16);
  EXPECT_FALSE(analysis::spans_overlap({nullptr, 64, "null"},
                                       {a.data(), a.bytes(), "a"}));
  EXPECT_FALSE(analysis::spans_overlap({a.data(), 0, "empty"},
                                       {a.data(), a.bytes(), "a"}));
}

// --- misbehaving kernels registered in kernels::registry -------------------

constexpr std::size_t kHonestBytes = 256;

// (a) Overrun: declares kHonestBytes but scribbles 8 bytes past the end.
void overrun_kernel(const kernels::ConvProblem&, const float*, const float*,
                    float*, float, float, void* ws, std::size_t ws_bytes) {
  std::memset(ws, 0x5A, ws_bytes + 8);
}

// (b) Under-declaration: touches 16 bytes more than it declares. (Kept
// within the red-zone width so the probe itself stays inside the audit
// allocation — the same reach limit ASan red-zones have.)
void underdeclaring_kernel(const kernels::ConvProblem&, const float*,
                           const float*, float*, float, float, void* ws,
                           std::size_t ws_bytes) {
  std::memset(ws, 0x5A, ws_bytes + 16);
}

// Well-behaved control: touches exactly what it declares.
void honest_kernel(const kernels::ConvProblem&, const float*, const float*,
                   float*, float, float, void* ws, std::size_t ws_bytes) {
  std::memset(ws, 0x5A, ws_bytes);
}

std::size_t honest_workspace(const kernels::ConvProblem&) {
  return kHonestBytes;
}

kernels::ConvProblem tiny_problem() {
  return kernels::ConvProblem({1, 1, 4, 4}, {1, 1, 3, 3},
                              {.pad_h = 1, .pad_w = 1});
}

TEST_F(WorkspaceAuditTest, RegistryReportsTestKernels) {
  const int base = kernels::algo_count(ConvKernelType::kForward);
  const int algo = kernels::register_test_kernel(
      ConvKernelType::kForward,
      {"TEST_HONEST", honest_workspace, honest_kernel});
  EXPECT_EQ(algo, base);
  EXPECT_EQ(kernels::algo_count(ConvKernelType::kForward), base + 1);
  EXPECT_EQ(kernels::algo_name(ConvKernelType::kForward, algo), "TEST_HONEST");
  EXPECT_TRUE(
      kernels::algo_supported(ConvKernelType::kForward, algo, tiny_problem()));
  EXPECT_EQ(
      kernels::algo_workspace(ConvKernelType::kForward, algo, tiny_problem()),
      kHonestBytes);
}

TEST_F(WorkspaceAuditTest, AuditorCatchesWorkspaceOverrun) {
  const int algo = kernels::register_test_kernel(
      ConvKernelType::kForward,
      {"TEST_OVERRUN", honest_workspace, overrun_kernel});
  const kernels::ConvProblem p = tiny_problem();
  AlignedBuffer<float> x(static_cast<std::size_t>(p.x.count()), true);
  AlignedBuffer<float> w(static_cast<std::size_t>(p.w.count()), true);
  AlignedBuffer<float> y(static_cast<std::size_t>(p.y.count()), true);
  AlignedBuffer<char> ws(kHonestBytes);
  try {
    kernels::execute(ConvKernelType::kForward, algo, p, x.data(), w.data(),
                     y.data(), 1.0f, 0.0f, ws.data(), ws.bytes());
    FAIL() << "auditor missed the overrun";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInternalError);
    const std::string what = e.what();
    EXPECT_NE(what.find("TEST_OVERRUN"), std::string::npos) << what;
    EXPECT_NE(what.find("offset " + std::to_string(kHonestBytes)),
              std::string::npos)
        << what;
  }
}

TEST_F(WorkspaceAuditTest, AuditorCatchesUnderDeclaration) {
  const int algo = kernels::register_test_kernel(
      ConvKernelType::kBackwardFilter,
      {"TEST_UNDERDECLARED", honest_workspace, underdeclaring_kernel});
  const kernels::ConvProblem p = tiny_problem();
  AlignedBuffer<float> x(static_cast<std::size_t>(p.x.count()), true);
  AlignedBuffer<float> dy(static_cast<std::size_t>(p.y.count()), true);
  AlignedBuffer<float> dw(static_cast<std::size_t>(p.w.count()), true);
  // The caller provides MORE than declared — the audit must still bound the
  // kernel to its declaration, or under-declarations hide until someone
  // hands it a tight arena slot (the WD segmenting case).
  AlignedBuffer<char> ws(4 * kHonestBytes);
  try {
    kernels::execute(ConvKernelType::kBackwardFilter, algo, p, x.data(),
                     dy.data(), dw.data(), 1.0f, 0.0f, ws.data(), ws.bytes());
    FAIL() << "auditor missed the under-declaration";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInternalError);
    const std::string what = e.what();
    EXPECT_NE(what.find("TEST_UNDERDECLARED"), std::string::npos) << what;
    EXPECT_NE(what.find("under-declared"), std::string::npos) << what;
  }
}

TEST_F(WorkspaceAuditTest, HonestTestKernelRunsCleanAndIsRecorded) {
  const int algo = kernels::register_test_kernel(
      ConvKernelType::kForward,
      {"TEST_HONEST", honest_workspace, honest_kernel});
  const kernels::ConvProblem p = tiny_problem();
  AlignedBuffer<float> x(static_cast<std::size_t>(p.x.count()), true);
  AlignedBuffer<float> w(static_cast<std::size_t>(p.w.count()), true);
  AlignedBuffer<float> y(static_cast<std::size_t>(p.y.count()), true);
  AlignedBuffer<char> ws(kHonestBytes);
  EXPECT_NO_THROW(kernels::execute(ConvKernelType::kForward, algo, p, x.data(),
                                   w.data(), y.data(), 1.0f, 0.0f, ws.data(),
                                   ws.bytes()));
  const auto report = analysis::audit_report();
  const auto it = report.find("Forward:TEST_HONEST");
  ASSERT_NE(it, report.end());
  EXPECT_EQ(it->second.declared_bytes, kHonestBytes);
  EXPECT_EQ(it->second.max_touched, kHonestBytes);
  EXPECT_EQ(it->second.runs, 1u);
}

// --- clean run over every registered algorithm -----------------------------

TEST_F(WorkspaceAuditTest, AllBuiltinAlgorithmsRunCleanUnderAudit) {
  // Shapes chosen to exercise every support predicate (FFT, tiling,
  // Winograd need unit stride/dilation and bounded windows).
  const kernels::ConvProblem problems[] = {
      {{4, 3, 8, 8}, {4, 3, 3, 3}, {.pad_h = 1, .pad_w = 1}},
      {{2, 3, 11, 11},
       {4, 3, 3, 3},
       {.pad_h = 1, .pad_w = 1, .stride_h = 2, .stride_w = 2}},
  };
  for (const kernels::ConvProblem& p : problems) {
    for (const ConvKernelType type :
         {ConvKernelType::kForward, ConvKernelType::kBackwardData,
          ConvKernelType::kBackwardFilter}) {
      const std::int64_t a_count =
          type == ConvKernelType::kBackwardData ? p.y.count() : p.x.count();
      const std::int64_t b_count =
          type == ConvKernelType::kBackwardFilter ? p.y.count() : p.w.count();
      const std::int64_t out_count = type == ConvKernelType::kForward
                                         ? p.y.count()
                                     : type == ConvKernelType::kBackwardData
                                         ? p.x.count()
                                         : p.w.count();
      AlignedBuffer<float> a(static_cast<std::size_t>(a_count));
      AlignedBuffer<float> b(static_cast<std::size_t>(b_count));
      AlignedBuffer<float> out(static_cast<std::size_t>(out_count));
      fill_random(a.data(), a_count, 7);
      fill_random(b.data(), b_count, 13);
      fill_constant(out.data(), out_count, 0.0f);
      for (int algo = 0; algo < kernels::algo_count(type); ++algo) {
        if (!kernels::algo_supported(type, algo, p)) continue;
        const std::size_t ws_bytes = kernels::algo_workspace(type, algo, p);
        AlignedBuffer<char> ws(ws_bytes);
        EXPECT_NO_THROW(kernels::execute(type, algo, p, a.data(), b.data(),
                                         out.data(), 1.0f, 0.0f, ws.data(),
                                         ws.bytes()))
            << kernels::algo_name(type, algo) << " " << to_string(type) << " "
            << p.to_string();
      }
    }
  }
  // Every audited kernel stayed within its declaration.
  for (const auto& [kernel, stats] : analysis::audit_report()) {
    EXPECT_LE(stats.max_touched, stats.declared_bytes) << kernel;
    EXPECT_GE(stats.runs, 1u) << kernel;
  }
}

// --- end-to-end: the WR execution path under audit -------------------------

TEST_F(WorkspaceAuditTest, WrExecutionPathRunsCleanUnderAudit) {
  core::Options options;
  options.workspace_limit = std::size_t{8} << 20;
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), options);
  const kernels::ConvProblem p({8, 3, 8, 8}, {4, 3, 3, 3},
                               {.pad_h = 1, .pad_w = 1});
  AlignedBuffer<float> x(static_cast<std::size_t>(p.x.count()));
  AlignedBuffer<float> w(static_cast<std::size_t>(p.w.count()));
  AlignedBuffer<float> y(static_cast<std::size_t>(p.y.count()), true);
  fill_random(x.data(), p.x.count(), 3);
  fill_random(w.data(), p.w.count(), 5);
  EXPECT_NO_THROW(handle.convolution(ConvKernelType::kForward, p, 1.0f,
                                     x.data(), w.data(), 0.0f, y.data()));
  // BackwardFilter: the beta-accumulating micro-batch path + alias checks.
  AlignedBuffer<float> dy(static_cast<std::size_t>(p.y.count()));
  AlignedBuffer<float> dw(static_cast<std::size_t>(p.w.count()), true);
  fill_random(dy.data(), p.y.count(), 11);
  EXPECT_NO_THROW(handle.convolution(ConvKernelType::kBackwardFilter, p, 1.0f,
                                     x.data(), dy.data(), 0.0f, dw.data()));
  EXPECT_FALSE(analysis::audit_report().empty());
}

}  // namespace
}  // namespace ucudnn
