// Unit and property tests for the SGEMM substrate: the blocked parallel
// implementation must match the naive reference for all transpose modes,
// alpha/beta combinations, and a sweep of shapes (including non-multiples of
// the blocking factors).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "gemm/gemm.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

using gemm::Trans;

std::vector<float> random_vec(std::int64_t count, std::uint64_t seed) {
  std::vector<float> v(static_cast<std::size_t>(count));
  fill_random(v.data(), count, seed);
  return v;
}

struct GemmCase {
  std::int64_t m, n, k;
  Trans ta, tb;
  float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const GemmCase p = GetParam();
  const auto a = random_vec(p.m * p.k, 1);
  const auto b = random_vec(p.k * p.n, 2);
  auto c_ref = random_vec(p.m * p.n, 3);
  auto c_fast = c_ref;

  const std::int64_t lda = p.ta == Trans::kNo ? p.k : p.m;
  const std::int64_t ldb = p.tb == Trans::kNo ? p.n : p.k;
  gemm::sgemm_naive(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(),
                    ldb, p.beta, c_ref.data(), p.n);
  gemm::sgemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb,
              p.beta, c_fast.data(), p.n);

  const double err = max_rel_diff(c_fast.data(), c_ref.data(), p.m * p.n);
  EXPECT_LT(err, 2e-4) << "m=" << p.m << " n=" << p.n << " k=" << p.k;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndModes, GemmParamTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{5, 7, 3, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{64, 64, 64, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{65, 63, 67, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{128, 200, 300, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{33, 17, 257, Trans::kYes, Trans::kNo, 1.0f, 0.0f},
        GemmCase{33, 17, 257, Trans::kNo, Trans::kYes, 1.0f, 0.0f},
        GemmCase{33, 17, 257, Trans::kYes, Trans::kYes, 1.0f, 0.0f},
        GemmCase{50, 50, 50, Trans::kNo, Trans::kNo, 2.5f, 0.0f},
        GemmCase{50, 50, 50, Trans::kNo, Trans::kNo, 1.0f, 1.0f},
        GemmCase{50, 50, 50, Trans::kNo, Trans::kNo, -0.5f, 0.75f},
        GemmCase{50, 50, 50, Trans::kYes, Trans::kYes, 2.0f, -1.0f},
        GemmCase{300, 65, 5, Trans::kNo, Trans::kNo, 1.0f, 0.5f},
        GemmCase{1, 512, 512, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{512, 1, 512, Trans::kYes, Trans::kNo, 1.0f, 0.0f}));

// Pinned parity tolerance: sgemm_naive accumulates in double while the
// blocked SIMD path accumulates in float, so results differ by rounding —
// bounded well below 2e-4 relative for the k ranges exercised here.
constexpr double kParityTol = 2e-4;

TEST(GemmTest, ParityAtBlockAndChunkEdges) {
  // Shapes straddling the register tile (6x16), the cache blocks
  // (MC=96 / KC=256 / NC=512), and the parallel-split min_chunk edges
  // (64 columns for the N split, 16 rows for the M split) — each +/-1 so
  // both the full-tile fast path and the masked edge path run.
  const std::int64_t shapes[][3] = {
      {6, 16, 1},   {7, 17, 2},    {5, 15, 255},  {6, 16, 257},
      {95, 63, 33}, {97, 65, 255}, {64, 513, 40}, {17, 511, 7},
      {129, 16, 96}};
  const float betas[] = {0.0f, 1.0f, 0.5f};
  for (const auto& shape : shapes) {
    const std::int64_t m = shape[0], n = shape[1], k = shape[2];
    for (const Trans ta : {Trans::kNo, Trans::kYes}) {
      for (const Trans tb : {Trans::kNo, Trans::kYes}) {
        for (const float beta : betas) {
          // Padded leading dimensions: every matrix is a view inside a
          // wider buffer, so stride handling is exercised everywhere.
          const std::int64_t lda = (ta == Trans::kNo ? k : m) + 3;
          const std::int64_t ldb = (tb == Trans::kNo ? n : k) + 5;
          const std::int64_t ldc = n + 7;
          const auto a = random_vec(m * k + lda * std::max(m, k), 21);
          const auto b = random_vec(k * n + ldb * std::max(k, n), 22);
          auto c_ref = random_vec(m * ldc, 23);
          auto c_fast = c_ref;
          gemm::sgemm_naive(ta, tb, m, n, k, 1.25f, a.data(), lda, b.data(),
                            ldb, beta, c_ref.data(), ldc);
          gemm::sgemm(ta, tb, m, n, k, 1.25f, a.data(), lda, b.data(), ldb,
                      beta, c_fast.data(), ldc);
          double err = 0;
          for (std::int64_t i = 0; i < m; ++i) {
            err = std::max(err, max_rel_diff(c_fast.data() + i * ldc,
                                             c_ref.data() + i * ldc, n));
          }
          EXPECT_LT(err, kParityTol)
              << "m=" << m << " n=" << n << " k=" << k
              << " ta=" << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes)
              << " beta=" << beta;
        }
      }
    }
  }
}

TEST(GemmTest, AlphaZeroIsExactBetaScale) {
  // alpha == 0 must take the beta-scale-only early-out: A and B are never
  // read (they hold NaNs here) and C is scaled exactly, bit-for-bit equal
  // to beta * c — no packed-loop rounding.
  const std::int64_t m = 33, n = 47, k = 129;
  const std::vector<float> a(static_cast<std::size_t>(m * k),
                             std::numeric_limits<float>::quiet_NaN());
  const std::vector<float> b(static_cast<std::size_t>(k * n),
                             std::numeric_limits<float>::quiet_NaN());
  const auto c0 = random_vec(m * n, 31);

  auto c = c0;
  gemm::sgemm(Trans::kNo, Trans::kNo, m, n, k, 0.0f, a.data(), b.data(), 0.5f,
              c.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 0.5f * c0[i]);

  c = c0;
  gemm::sgemm(Trans::kNo, Trans::kNo, m, n, k, 0.0f, a.data(), b.data(), 1.0f,
              c.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], c0[i]);

  c = c0;
  gemm::sgemm(Trans::kNo, Trans::kNo, m, n, k, 0.0f, a.data(), b.data(), 0.0f,
              c.data());
  for (float v : c) EXPECT_EQ(v, 0.0f);
}

TEST(GemmTest, BetaZeroOverwritesNaNs) {
  // beta == 0 must not propagate existing NaN/garbage in C.
  const auto a = random_vec(4 * 4, 1);
  const auto b = random_vec(4 * 4, 2);
  std::vector<float> c(16, std::numeric_limits<float>::quiet_NaN());
  gemm::sgemm(Trans::kNo, Trans::kNo, 4, 4, 4, 1.0f, a.data(), b.data(), 0.0f,
              c.data());
  for (float v : c) EXPECT_FALSE(std::isnan(v));
}

TEST(GemmTest, KZeroScalesCOnly) {
  std::vector<float> c(6, 2.0f);
  gemm::sgemm(Trans::kNo, Trans::kNo, 2, 3, 0, 1.0f, nullptr, 0, nullptr, 0,
              0.5f, c.data(), 3);
  for (float v : c) EXPECT_FLOAT_EQ(v, 1.0f);
  gemm::sgemm(Trans::kNo, Trans::kNo, 2, 3, 0, 1.0f, nullptr, 0, nullptr, 0,
              0.0f, c.data(), 3);
  for (float v : c) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(GemmTest, IdentityMultiplication) {
  const std::int64_t n = 32;
  std::vector<float> eye(static_cast<std::size_t>(n * n), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) eye[static_cast<std::size_t>(i * n + i)] = 1.0f;
  const auto b = random_vec(n * n, 9);
  std::vector<float> c(static_cast<std::size_t>(n * n), 0.0f);
  gemm::sgemm(Trans::kNo, Trans::kNo, n, n, n, 1.0f, eye.data(), b.data(), 0.0f,
              c.data());
  EXPECT_LT(max_abs_diff(c.data(), b.data(), n * n), 1e-6);
}

TEST(GemmTest, StridedLeadingDimensions) {
  // C is a 3x4 view inside a wider 3x10 buffer; columns 4..9 must be intact.
  const auto a = random_vec(3 * 5, 1);
  const auto b = random_vec(5 * 4, 2);
  std::vector<float> c(30, 7.0f);
  std::vector<float> c_ref = c;
  gemm::sgemm(Trans::kNo, Trans::kNo, 3, 4, 5, 1.0f, a.data(), 5, b.data(), 4,
              0.0f, c.data(), 10);
  gemm::sgemm_naive(Trans::kNo, Trans::kNo, 3, 4, 5, 1.0f, a.data(), 5,
                    b.data(), 4, 0.0f, c_ref.data(), 10);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (j < 4) {
        EXPECT_NEAR(c[static_cast<std::size_t>(i * 10 + j)],
                    c_ref[static_cast<std::size_t>(i * 10 + j)], 1e-4);
      } else {
        EXPECT_EQ(c[static_cast<std::size_t>(i * 10 + j)], 7.0f);
      }
    }
  }
}

TEST(GemmTest, AssociativityProperty) {
  // (A*B)*v == A*(B*v) up to float tolerance — exercises accumulation order
  // robustness of the blocked implementation.
  const std::int64_t n = 48;
  const auto a = random_vec(n * n, 4);
  const auto b = random_vec(n * n, 5);
  const auto v = random_vec(n, 6);

  std::vector<float> ab(static_cast<std::size_t>(n * n));
  gemm::sgemm(Trans::kNo, Trans::kNo, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
              ab.data());
  std::vector<float> abv(static_cast<std::size_t>(n));
  gemm::sgemm(Trans::kNo, Trans::kNo, n, 1, n, 1.0f, ab.data(), v.data(), 0.0f,
              abv.data());

  std::vector<float> bv(static_cast<std::size_t>(n));
  gemm::sgemm(Trans::kNo, Trans::kNo, n, 1, n, 1.0f, b.data(), v.data(), 0.0f,
              bv.data());
  std::vector<float> a_bv(static_cast<std::size_t>(n));
  gemm::sgemm(Trans::kNo, Trans::kNo, n, 1, n, 1.0f, a.data(), bv.data(), 0.0f,
              a_bv.data());

  EXPECT_LT(max_rel_diff(abv.data(), a_bv.data(), n), 1e-3);
}

}  // namespace
}  // namespace ucudnn
