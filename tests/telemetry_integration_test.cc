// End-to-end telemetry tests: run a small caffepp net with tracing on,
// validate that the exported Chrome trace is well-formed JSON carrying the
// expected span catalog, and that the process-wide metrics registry mirrors
// every legacy per-handle accessor.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "core/ucudnn.h"
#include "frameworks/caffepp/net.h"
#include "json_validator.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

using ucudnn::test::JsonValidator;

namespace ucudnn {
namespace {

std::shared_ptr<device::Device> cpu() {
  return std::make_shared<device::Device>(device::host_cpu_spec());
}

core::Options wr(std::size_t limit) {
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = limit;
  return opts;
}

void run_small_net(core::UcudnnHandle& handle) {
  caffepp::Net net(handle, "telemetry-itest", caffepp::NetOptions{1 << 20, true});
  net.input("data", {6, 3, 14, 14});
  std::string top = net.conv("c1", "data", 8, 3, 1, 1);
  top = net.relu("r1", top);
  top = net.conv("c2", top, 8, 3, 1, 1);
  top = net.pool_max("p1", top, 2, 2);
  top = net.fc("f1", top, 10);
  top = net.softmax_loss("loss", top);
  net.init(99);
  net.forward();
  net.backward();
}

std::uint64_t counter_or_zero(const telemetry::MetricsSnapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

double double_counter_or_zero(const telemetry::MetricsSnapshot& snap,
                              const std::string& name) {
  const auto it = snap.double_counters.find(name);
  return it == snap.double_counters.end() ? 0.0 : it->second;
}

TEST(TelemetryIntegrationTest, TraceIsValidJsonWithExpectedSpans) {
  telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.clear();
  {
    core::UcudnnHandle handle(cpu(), wr(1 << 20));
    run_small_net(handle);
  }
  recorder.set_enabled(false);

  // Every stage of the WR pipeline plus both framework levels must appear.
  std::set<std::string> names;
  for (const auto& event : recorder.events()) names.insert(event.name);
  for (const char* expected :
       {"benchmark", "wr_dp", "plan_build", "segment_exec", "find_algorithms",
        "mcudnn_conv", "net.forward", "net.backward", "layer.forward",
        "layer.backward"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }

  const std::string json = recorder.to_json();
  EXPECT_TRUE(JsonValidator(json).validate()) << "trace JSON is malformed";
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"benchmark\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"plan_build\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"segment_exec\""), std::string::npos);
  recorder.clear();
}

TEST(TelemetryIntegrationTest, WriteChromeTraceRoundTripsThroughAFile) {
  telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.clear();
  {
    core::UcudnnHandle handle(cpu(), wr(1 << 20));
    run_small_net(handle);
  }
  recorder.set_enabled(false);

  const std::string path =
      (std::filesystem::temp_directory_path() / "ucudnn_trace_test.json")
          .string();
  recorder.write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_TRUE(JsonValidator(json).validate()) << "trace file is malformed";
  EXPECT_NE(json.find("\"cat\":\"ucudnn\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
  recorder.clear();
}

TEST(TelemetryIntegrationTest, RegistryMirrorsLegacyAccessors) {
  // One source of truth: after a clean baseline, every pre-existing
  // per-handle counter must be readable from the process-wide registry with
  // the same value the legacy accessor reports.
  telemetry::MetricsRegistry::instance().reset();
  core::UcudnnHandle handle(cpu(), wr(1 << 20));
  run_small_net(handle);

  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::instance().snapshot();

  EXPECT_DOUBLE_EQ(double_counter_or_zero(snap, "ucudnn.benchmark.total_ms"),
                   handle.total_benchmark_ms());
  EXPECT_DOUBLE_EQ(double_counter_or_zero(snap, "ucudnn.planner.optimize_ms"),
                   handle.total_optimize_ms());
  EXPECT_DOUBLE_EQ(
      double_counter_or_zero(snap, "ucudnn.planner.replan_benchmark_ms"),
      handle.total_replan_benchmark_ms());

  EXPECT_EQ(counter_or_zero(snap, "ucudnn.plan_cache.hits"),
            handle.plan_cache().hits());
  EXPECT_EQ(counter_or_zero(snap, "ucudnn.plan_cache.misses"),
            handle.plan_cache().misses());

  const core::DegradationStats& stats = handle.degradation_stats();
  EXPECT_EQ(counter_or_zero(snap, "ucudnn.degradation.retries"),
            stats.retries);
  EXPECT_EQ(counter_or_zero(snap, "ucudnn.degradation.degraded_allocations"),
            stats.degraded_allocations);
  EXPECT_EQ(counter_or_zero(snap, "ucudnn.degradation.blacklisted_algorithms"),
            stats.blacklisted_algorithms);
  EXPECT_EQ(counter_or_zero(snap, "ucudnn.degradation.solver_fallbacks"),
            stats.solver_fallbacks);
  EXPECT_EQ(counter_or_zero(snap, "ucudnn.degradation.cache_quarantines"),
            stats.cache_quarantines);
  EXPECT_EQ(
      counter_or_zero(snap, "ucudnn.degradation.wd_unrecorded_fallbacks"),
      stats.wd_unrecorded_fallbacks);

  // The run exercised benchmarking and execution, so the headline metrics
  // must be non-trivial, not merely equal-and-zero.
  EXPECT_GT(counter_or_zero(snap, "ucudnn.benchmark.runs"), 0u);
  EXPECT_GT(counter_or_zero(snap, "ucudnn.executor.segments"), 0u);
  EXPECT_GT(handle.total_benchmark_ms(), 0.0);
}

}  // namespace
}  // namespace ucudnn
