// Grouped-convolution tests (cudnnSetConvolutionGroupCount equivalent):
// geometry validation, numerical agreement of every group-capable algorithm
// against a hand-rolled per-group reference, support gating (only the
// implicit/direct family runs grouped problems, as in cuDNN), micro-batching
// through the μ-cuDNN handle, and the grouped AlexNet model.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/aligned_buffer.h"
#include "core/ucudnn.h"
#include "frameworks/caffepp/model_zoo.h"
#include "kernels/registry.h"
#include "tensor/tensor.h"

namespace ucudnn::kernels {
namespace {

// Hand-rolled grouped forward reference: run each group as an independent
// ungrouped convolution over its channel slices.
void grouped_forward_reference(const ConvProblem& p, const float* x,
                               const float* w, float* y) {
  const std::int64_t groups = p.geom.groups;
  const std::int64_t kpg = p.w.k / groups;
  ConvGeometry geom = p.geom;
  geom.groups = 1;
  const TensorShape x_slice = {p.x.n, p.w.c, p.x.h, p.x.w};
  const FilterDesc w_slice{kpg, p.w.c, p.w.r, p.w.s};
  const ConvProblem slice(x_slice, w_slice, geom);

  std::vector<float> xs(static_cast<std::size_t>(slice.x.count()));
  std::vector<float> ys(static_cast<std::size_t>(slice.y.count()));
  for (std::int64_t g = 0; g < groups; ++g) {
    // Gather group g's input channels.
    for (std::int64_t n = 0; n < p.x.n; ++n) {
      const float* src =
          x + (n * p.x.c + g * p.w.c) * p.x.h * p.x.w;
      std::copy(src, src + p.w.c * p.x.h * p.x.w,
                xs.data() + n * p.w.c * p.x.h * p.x.w);
    }
    execute(ConvKernelType::kForward, fwd_algo::kDirect, slice, xs.data(),
            w + g * kpg * p.w.c * p.w.r * p.w.s, ys.data(), 1.0f, 0.0f,
            nullptr, 0);
    // Scatter group g's output channels.
    for (std::int64_t n = 0; n < p.x.n; ++n) {
      const float* src = ys.data() + n * kpg * p.y.h * p.y.w;
      float* dst = y + (n * p.y.c + g * kpg) * p.y.h * p.y.w;
      std::copy(src, src + kpg * p.y.h * p.y.w, dst);
    }
  }
}

ConvProblem grouped_problem(std::int64_t groups, std::int64_t batch = 2) {
  // 8 input channels split into `groups`, 12 output channels.
  return ConvProblem({batch, 8, 9, 9}, {12, 8 / groups, 3, 3},
                     {.pad_h = 1, .pad_w = 1, .groups = groups});
}

TEST(GroupedGeometryTest, ValidationRules) {
  // Filter c must be C/groups; K must divide by groups.
  ConvGeometry g2{.groups = 2};
  EXPECT_NO_THROW(g2.output_shape({1, 8, 9, 9}, {12, 4, 3, 3}));
  EXPECT_THROW(g2.output_shape({1, 8, 9, 9}, {12, 8, 3, 3}), Error);
  EXPECT_THROW(g2.output_shape({1, 8, 9, 9}, {13, 4, 3, 3}), Error);
  ConvGeometry g0{.groups = 0};
  EXPECT_THROW(g0.output_shape({1, 8, 9, 9}, {12, 4, 3, 3}), Error);
}

TEST(GroupedGeometryTest, HashAndToStringIncludeGroups) {
  const ConvProblem p1 = grouped_problem(2);
  ConvProblem p2({2, 8, 9, 9}, {12, 2, 3, 3},
                 {.pad_h = 1, .pad_w = 1, .groups = 4});
  EXPECT_NE(p1.hash(), p2.hash());
  EXPECT_NE(p1.to_string().find("groups(2)"), std::string::npos);
}

TEST(GroupedSupportTest, OnlyImplicitFamilyRunsGroupedProblems) {
  const ConvProblem p = grouped_problem(2);
  EXPECT_TRUE(algo_supported(ConvKernelType::kForward, fwd_algo::kDirect, p));
  EXPECT_TRUE(
      algo_supported(ConvKernelType::kForward, fwd_algo::kImplicitGemm, p));
  EXPECT_TRUE(algo_supported(ConvKernelType::kForward,
                             fwd_algo::kImplicitPrecompGemm, p));
  EXPECT_FALSE(algo_supported(ConvKernelType::kForward, fwd_algo::kGemm, p));
  EXPECT_FALSE(algo_supported(ConvKernelType::kForward, fwd_algo::kFft, p));
  EXPECT_FALSE(
      algo_supported(ConvKernelType::kForward, fwd_algo::kWinograd, p));
  EXPECT_TRUE(
      algo_supported(ConvKernelType::kBackwardData, bwd_data_algo::kAlgo0, p));
  EXPECT_FALSE(
      algo_supported(ConvKernelType::kBackwardData, bwd_data_algo::kAlgo1, p));
  EXPECT_TRUE(algo_supported(ConvKernelType::kBackwardFilter,
                             bwd_filter_algo::kAlgo0, p));
  EXPECT_FALSE(algo_supported(ConvKernelType::kBackwardFilter,
                              bwd_filter_algo::kAlgo3, p));
}

class GroupedAlgoTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GroupedAlgoTest, ForwardAlgosMatchPerGroupReference) {
  const ConvProblem p = grouped_problem(GetParam());
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  std::vector<float> w(static_cast<std::size_t>(p.w.count()));
  fill_random(x.data(), p.x.count(), 21);
  fill_random(w.data(), p.w.count(), 22);

  std::vector<float> expected(static_cast<std::size_t>(p.y.count()), 0.0f);
  grouped_forward_reference(p, x.data(), w.data(), expected.data());

  for (int algo = 0; algo < algo_count(ConvKernelType::kForward); ++algo) {
    if (!algo_supported(ConvKernelType::kForward, algo, p)) continue;
    const std::size_t ws_bytes =
        algo_workspace(ConvKernelType::kForward, algo, p);
    AlignedBuffer<char> ws(ws_bytes);
    std::vector<float> y(static_cast<std::size_t>(p.y.count()), 0.0f);
    execute(ConvKernelType::kForward, algo, p, x.data(), w.data(), y.data(),
            1.0f, 0.0f, ws.data(), ws_bytes);
    EXPECT_LT(max_rel_diff(y.data(), expected.data(), p.y.count()), 5e-3)
        << algo_name(ConvKernelType::kForward, algo) << " groups "
        << GetParam();
  }
}

TEST_P(GroupedAlgoTest, BackwardGradientsAreConsistentWithForward) {
  // Finite-difference check of BackwardData/BackwardFilter against the
  // grouped forward (on a reduced problem for speed).
  const std::int64_t groups = GetParam();
  const ConvProblem p({1, 4 * groups / 2, 6, 6},
                      {2 * groups, (4 * groups / 2) / groups, 3, 3},
                      {.pad_h = 1, .pad_w = 1, .groups = groups});
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  std::vector<float> w(static_cast<std::size_t>(p.w.count()));
  std::vector<float> dy(static_cast<std::size_t>(p.y.count()));
  fill_random(x.data(), p.x.count(), 31);
  fill_random(w.data(), p.w.count(), 32);
  fill_random(dy.data(), p.y.count(), 33);

  std::vector<float> dx(static_cast<std::size_t>(p.x.count()), 0.0f);
  std::vector<float> dw(static_cast<std::size_t>(p.w.count()), 0.0f);
  execute(ConvKernelType::kBackwardData, bwd_data_algo::kAlgo0, p, dy.data(),
          w.data(), dx.data(), 1.0f, 0.0f, nullptr, 0);
  execute(ConvKernelType::kBackwardFilter, bwd_filter_algo::kAlgo0, p,
          x.data(), dy.data(), dw.data(), 1.0f, 0.0f, nullptr, 0);

  // J = <y, dy>; dJ/dx_i and dJ/dw_i must match finite differences.
  auto objective = [&](const std::vector<float>& xv,
                       const std::vector<float>& wv) {
    std::vector<float> y(static_cast<std::size_t>(p.y.count()), 0.0f);
    execute(ConvKernelType::kForward, fwd_algo::kDirect, p, xv.data(),
            wv.data(), y.data(), 1.0f, 0.0f, nullptr, 0);
    double acc = 0.0;
    for (std::int64_t i = 0; i < p.y.count(); ++i) acc += y[i] * dy[i];
    return acc;
  };
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < p.x.count(); i += p.x.count() / 7) {
    auto xp = x, xm = x;
    xp[static_cast<std::size_t>(i)] += eps;
    xm[static_cast<std::size_t>(i)] -= eps;
    const double numeric = (objective(xp, w) - objective(xm, w)) / (2 * eps);
    EXPECT_NEAR(numeric, dx[static_cast<std::size_t>(i)], 2e-2) << "dx " << i;
  }
  for (std::int64_t i = 0; i < p.w.count(); i += p.w.count() / 7) {
    auto wp = w, wm = w;
    wp[static_cast<std::size_t>(i)] += eps;
    wm[static_cast<std::size_t>(i)] -= eps;
    const double numeric = (objective(x, wp) - objective(x, wm)) / (2 * eps);
    EXPECT_NEAR(numeric, dw[static_cast<std::size_t>(i)], 2e-2) << "dw " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Groups, GroupedAlgoTest, ::testing::Values(2, 4));

TEST(GroupedMicroBatchTest, HandleSplitsGroupedKernels) {
  // Grouped problems flow through the WR optimizer like any other; the
  // micro-batched result must match the undivided reference.
  auto cpu = std::make_shared<device::Device>(device::host_cpu_spec());
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = std::size_t{256} << 10;
  core::UcudnnHandle handle(cpu, opts);

  const ConvProblem p = grouped_problem(2, /*batch=*/6);
  Tensor x(p.x), w(TensorShape{p.w.k, p.w.c, p.w.r, p.w.s}), y(p.y), ref(p.y);
  fill_random(x, 41);
  fill_random(w, 42);
  handle.convolution(ConvKernelType::kForward, p, 1.0f, x.data(), w.data(),
                     0.0f, y.data());
  grouped_forward_reference(p, x.data(), w.data(), ref.data());
  EXPECT_LT(max_rel_diff(y.data(), ref.data(), p.y.count()), 5e-3);
}

}  // namespace
}  // namespace ucudnn::kernels

namespace ucudnn::caffepp {
namespace {

TEST(GroupedAlexNetTest, ShapesMatchTheTwoTowerOriginal) {
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::Options opts;
  opts.workspace_limit = std::size_t{64} << 20;
  core::UcudnnHandle handle(dev, opts);
  Net net(handle, "alexnet-grouped");
  build_alexnet_grouped(net, 8);
  EXPECT_EQ(net.blob("conv2")->shape(), (TensorShape{8, 256, 27, 27}));
  EXPECT_EQ(net.blob("conv5")->shape(), (TensorShape{8, 256, 13, 13}));
  // Grouped conv2 has half the parameters of the ungrouped variant.
  const auto problems = net.conv_problems();
  EXPECT_EQ(problems.at("conv2").w.c, 48);
  EXPECT_EQ(problems.at("conv2").geom.groups, 2);
  EXPECT_EQ(problems.at("conv3").geom.groups, 1);
}

TEST(GroupedAlexNetTest, VirtualTimingRuns) {
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::Options opts;
  opts.workspace_limit = std::size_t{64} << 20;
  core::UcudnnHandle handle(dev, opts);
  Net net(handle, "alexnet-grouped");
  build_alexnet_grouped(net, 64);
  net.time(1);
  EXPECT_GT(net.last_iteration_ms(), 0.0);
}

}  // namespace
}  // namespace ucudnn::caffepp
