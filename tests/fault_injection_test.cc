// Fault-injection framework + graceful-degradation soak.
//
// The soak tests run a fixed 4-kernel workload (two forward convolutions,
// one BackwardFilter, one BackwardData) repeatedly under several injected
// fault schedules and compare outputs against the fault-free run. The
// benchmark cache is prefilled with synthetic perf tables so every plan is
// deterministic (no wall-clock measurements), and the preferred algorithms
// are chosen to be division-invariant: fwd GEMM, bwd-data ALGO_1 and
// bwd-filter ALGO_1 all compute each output element with an accumulation
// order independent of the micro-batch division, and fwd GEMM's workspace is
// exactly linear in the batch, so halving the workspace limit halves the
// micro-batch while reproducing bit-identical outputs — the paper's "same
// computational semantics" guarantee, extended to the degraded paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/ucudnn.h"
#include "kernels/registry.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().configure(""); }
};

// ------------------------------------------------------------ spec parsing

TEST_F(FaultInjectionTest, ParsesTheReferenceSpec) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("alloc:every=7;kernel:p=0.02,seed=42;cache:corrupt-load");
  EXPECT_TRUE(fi.armed());
  EXPECT_TRUE(fi.spec(FaultSite::kAlloc).enabled);
  EXPECT_EQ(fi.spec(FaultSite::kAlloc).every, 7u);
  EXPECT_TRUE(fi.spec(FaultSite::kKernel).enabled);
  EXPECT_DOUBLE_EQ(fi.spec(FaultSite::kKernel).probability, 0.02);
  EXPECT_EQ(fi.spec(FaultSite::kKernel).seed, 42u);
  EXPECT_TRUE(fi.spec(FaultSite::kCacheLoad).enabled);
  EXPECT_EQ(fi.spec(FaultSite::kCacheLoad).every, 1u);  // bare flag default
  EXPECT_FALSE(fi.spec(FaultSite::kCacheSave).enabled);

  fi.configure("cache:fail-save,count=1;alloc:every=1,after=3,count=2");
  EXPECT_TRUE(fi.spec(FaultSite::kCacheSave).enabled);
  EXPECT_EQ(fi.spec(FaultSite::kCacheSave).count, 1u);
  EXPECT_FALSE(fi.spec(FaultSite::kCacheLoad).enabled);
  EXPECT_EQ(fi.spec(FaultSite::kAlloc).after, 3u);
  EXPECT_EQ(fi.spec(FaultSite::kAlloc).count, 2u);

  fi.configure("");
  EXPECT_FALSE(fi.armed());
}

TEST_F(FaultInjectionTest, RejectsMalformedSpecs) {
  FaultInjector& fi = FaultInjector::instance();
  for (const char* bad :
       {"bogus:every=1", "alloc:frequency=2", "alloc:every=x", "alloc:every=0",
        "kernel:p=1.5", "kernel:p=oops", "cache:every=1", "cache:flagless",
        "alloc:corrupt-load"}) {
    try {
      fi.configure(bad);
      FAIL() << "expected kInvalidValue for spec: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::kInvalidValue) << bad;
    }
  }
  // A failed configure never leaves the injector half-armed.
  EXPECT_FALSE(fi.armed());
}

TEST_F(FaultInjectionTest, DottedSiteClausesParkUntilRegistration) {
  FaultInjector& fi = FaultInjector::instance();
  // A clause naming a dotted (namespaced) site parses before the site
  // exists: it parks, arms the injector, and applies the moment the site
  // registers — so UCUDNN_FAULTS works no matter whether the subsystem that
  // owns the site initializes before or after the spec is read.
  fi.configure("acme.later:every=2,count=3");
  EXPECT_TRUE(fi.armed());
  EXPECT_FALSE(fi.find_site("acme.later").has_value());

  const FaultSiteId id =
      fi.register_site("acme.later", Status::kInternalError);
  ASSERT_TRUE(fi.find_site("acme.later").has_value());
  EXPECT_EQ(*fi.find_site("acme.later"), id);
  EXPECT_TRUE(fi.spec(id).enabled);
  EXPECT_EQ(fi.spec(id).every, 2u);
  EXPECT_EQ(fi.spec(id).count, 3u);
  EXPECT_FALSE(fi.should_fail(id));
  EXPECT_TRUE(fi.should_fail(id));

  // Re-registration is idempotent: same id, schedule and counters intact.
  EXPECT_EQ(fi.register_site("acme.later", Status::kAllocFailed), id);
  EXPECT_EQ(fi.stats(id).checks, 2u);
  EXPECT_TRUE(fi.spec(id).enabled);

  // The reverse order works identically: configuring an already-registered
  // dynamic site applies directly, and fail_point throws the status the
  // site was first registered with.
  fi.configure("acme.later:every=1");
  try {
    fi.fail_point(id);
    FAIL() << "expected the registered status";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInternalError);
  }

  // An empty spec disarms parked clauses too, and a non-dotted unknown name
  // is still rejected as a typo.
  fi.configure("zzz.unseen:every=1");
  EXPECT_TRUE(fi.armed());
  fi.configure("");
  EXPECT_FALSE(fi.armed());
  EXPECT_THROW(fi.configure("acmelater:every=1"), Error);
  EXPECT_THROW(fi.register_site("undotted", Status::kInternalError), Error);
}

TEST_F(FaultInjectionTest, EveryNScheduleIsDeterministic) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("kernel:every=3");
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fi.should_fail(FaultSite::kKernel));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(fi.stats(FaultSite::kKernel).checks, 9u);
  EXPECT_EQ(fi.stats(FaultSite::kKernel).triggered, 3u);
  fi.reset_counters();
  EXPECT_EQ(fi.stats(FaultSite::kKernel).checks, 0u);
  EXPECT_EQ(fi.stats(FaultSite::kKernel).triggered, 0u);
}

TEST_F(FaultInjectionTest, ProbabilityScheduleReplaysWithTheSameSeed) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("alloc:p=0.5,seed=7");
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(fi.should_fail(FaultSite::kAlloc));
  EXPECT_GT(fi.stats(FaultSite::kAlloc).triggered, 20u);
  EXPECT_LT(fi.stats(FaultSite::kAlloc).triggered, 80u);
  fi.reset_counters();
  std::vector<bool> second;
  for (int i = 0; i < 100; ++i) second.push_back(fi.should_fail(FaultSite::kAlloc));
  EXPECT_EQ(first, second);  // seeded PRNG, no wall clock
}

TEST_F(FaultInjectionTest, AfterAndCountBoundTheSchedule) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("alloc:every=1,after=3,count=2");
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(fi.should_fail(FaultSite::kAlloc));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, false,
                                      false, false}));
  EXPECT_EQ(fi.stats(FaultSite::kAlloc).triggered, 2u);
}

TEST_F(FaultInjectionTest, FailPointThrowsTheMappedStatus) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("alloc;kernel");
  try {
    fi.fail_point(FaultSite::kAlloc);
    FAIL() << "expected kAllocFailed";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kAllocFailed);
  }
  try {
    fi.fail_point(FaultSite::kKernel);
    FAIL() << "expected kExecutionFailed";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kExecutionFailed);
  }
  // Disabled site: fail_point is a no-op even while armed.
  EXPECT_NO_THROW(fi.fail_point(FaultSite::kCacheSave));
  fi.configure("");
  EXPECT_NO_THROW(fi.fail_point(FaultSite::kAlloc));
  EXPECT_EQ(fi.stats(FaultSite::kAlloc).checks, 0u);
}

// ----------------------------------------------------- DeviceBuffer safety

TEST_F(FaultInjectionTest, DeviceBufferMoveSelfAssignAndRelease) {
  auto dev = std::make_shared<device::Device>(device::host_cpu_spec());
  {
    core::DeviceBuffer a(dev, 1024, "t");
    EXPECT_NE(a.data(), nullptr);
    EXPECT_EQ(dev->bytes_in_use(), 1024u);

    core::DeviceBuffer b(std::move(a));
    EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(dev->bytes_in_use(), 1024u);

    core::DeviceBuffer c(dev, 2048, "t");
    EXPECT_EQ(dev->bytes_in_use(), 3072u);
    c = std::move(b);  // move-assign releases the old 2048-byte allocation
    EXPECT_EQ(dev->bytes_in_use(), 1024u);
    EXPECT_EQ(c.size(), 1024u);

    core::DeviceBuffer* alias = &c;
    c = std::move(*alias);  // self-move must not double-release
    EXPECT_EQ(c.size(), 1024u);
    EXPECT_NE(c.data(), nullptr);
    EXPECT_EQ(dev->bytes_in_use(), 1024u);
  }
  // Every destructor ran exactly once: nothing leaked, nothing double-freed.
  EXPECT_EQ(dev->bytes_in_use(), 0u);
}

TEST_F(FaultInjectionTest, WrEntryIsNotCachedWhenAllocationThrows) {
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::Options opts;
  opts.workspace_limit = std::size_t{64} << 20;
  opts.fail_fast = true;  // surface the injected OOM instead of degrading
  core::UcudnnHandle handle(dev, opts);
  const kernels::ConvProblem problem({16, 16, 14, 14}, {16, 16, 3, 3},
                                     {.pad_h = 1, .pad_w = 1});

  FaultInjector::instance().configure("alloc:every=1,count=1");
  try {
    handle.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr,
                       nullptr, 0.0f, nullptr);
    FAIL() << "expected the injected allocation failure to surface";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kAllocFailed);
  }
  // The half-built entry must not have been cached...
  EXPECT_EQ(handle.configuration_for(ConvKernelType::kForward, problem),
            nullptr);
  EXPECT_EQ(dev->bytes_in_use(), 0u);

  // ...so the next call plans and executes cleanly.
  FaultInjector::instance().configure("");
  handle.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr, nullptr,
                     0.0f, nullptr);
  EXPECT_NE(handle.configuration_for(ConvKernelType::kForward, problem),
            nullptr);
}

// ----------------------------------------------------- constructor checks

TEST_F(FaultInjectionTest, ConstructorValidatesOptionsAndNode) {
  try {
    core::Options opts;
    opts.benchmark_devices = 0;
    core::UcudnnHandle handle(
        std::make_shared<device::Device>(device::host_cpu_spec()), opts);
    FAIL() << "expected kBadParam for benchmark_devices = 0";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kBadParam);
  }
  try {
    core::Options opts;
    opts.max_retries = -1;
    core::UcudnnHandle handle(
        std::make_shared<device::Device>(device::host_cpu_spec()), opts);
    FAIL() << "expected kBadParam for max_retries = -1";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kBadParam);
  }
  // An empty node is rejected with a clear kBadParam, not std::out_of_range.
  try {
    device::Node node(device::p100_sxm2_spec(), 0);
    FAIL() << "expected kBadParam for an empty node";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kBadParam);
  }
}

// ------------------------------------------------------- cache robustness

TEST_F(FaultInjectionTest, CorruptCacheFileIsQuarantinedNotFatal) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ucudnn_fault_corrupt.db")
          .string();
  {
    std::ofstream out(path);
    out << "this is not\ta benchmark cache\n";
  }
  {
    core::Options opts;
    opts.cache_path = path;
    core::UcudnnHandle handle(
        std::make_shared<device::Device>(device::p100_sxm2_spec()), opts);
    EXPECT_EQ(handle.degradation_stats().cache_quarantines, 1u);
    EXPECT_EQ(handle.cache()->size(), 0u);
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  }  // teardown re-saves a fresh (valid) database to `path`
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
}

TEST_F(FaultInjectionTest, AtomicSaveSurvivesAnInjectedCrash) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ucudnn_fault_atomic.db")
          .string();
  const kernels::ConvProblem p({8, 4, 10, 10}, {4, 4, 3, 3},
                               {.pad_h = 1, .pad_w = 1});
  core::BenchmarkCache cache;
  std::vector<mcudnn::AlgoPerf> perfs(1);
  perfs[0] = {2, Status::kSuccess, 1.5, 4096};
  cache.store("P100-SXM2", ConvKernelType::kForward, p, 8, perfs);
  cache.save_file(path);

  std::ifstream before_in(path);
  const std::string before((std::istreambuf_iterator<char>(before_in)),
                           std::istreambuf_iterator<char>());
  before_in.close();
  ASSERT_FALSE(before.empty());

  // A crash between write and publish must leave the old database intact
  // and no temp file behind.
  cache.store("P100-SXM2", ConvKernelType::kBackwardData, p, 8, perfs);
  FaultInjector::instance().configure("cache:fail-save");
  EXPECT_THROW(cache.save_file(path), Error);
  std::ifstream after_in(path);
  const std::string after((std::istreambuf_iterator<char>(after_in)),
                          std::istreambuf_iterator<char>());
  after_in.close();
  EXPECT_EQ(after, before);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  FaultInjector::instance().configure("");
  cache.save_file(path);
  core::BenchmarkCache reloaded;
  EXPECT_EQ(reloaded.load_file(path), core::CacheLoadResult::kLoaded);
  EXPECT_EQ(reloaded.size(), 2u);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, BlacklistFiltersLookupsButNotTheDatabase) {
  const kernels::ConvProblem p({8, 4, 10, 10}, {4, 4, 3, 3},
                               {.pad_h = 1, .pad_w = 1});
  core::BenchmarkCache cache;
  std::vector<mcudnn::AlgoPerf> perfs(2);
  perfs[0] = {2, Status::kSuccess, 1.0, 4096};
  perfs[1] = {3, Status::kSuccess, 2.0, 0};
  cache.store("HostCpu", ConvKernelType::kForward, p, 8, perfs);

  cache.blacklist("HostCpu", ConvKernelType::kForward, 2);
  EXPECT_TRUE(cache.is_blacklisted("HostCpu", ConvKernelType::kForward, 2));
  EXPECT_FALSE(cache.is_blacklisted("HostCpu", ConvKernelType::kBackwardData, 2));
  EXPECT_EQ(cache.blacklisted_count(), 1u);

  const auto hit = cache.lookup("HostCpu", ConvKernelType::kForward, p, 8);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].algo, 3);

  // The blacklist is in-memory only: the persisted database keeps both
  // entries so one bad run cannot poison the shared cluster cache.
  const std::string path =
      (std::filesystem::temp_directory_path() / "ucudnn_fault_blacklist.db")
          .string();
  cache.save_file(path);
  core::BenchmarkCache reloaded;
  EXPECT_EQ(reloaded.load_file(path), core::CacheLoadResult::kLoaded);
  const auto fresh = reloaded.lookup("HostCpu", ConvKernelType::kForward, p, 8);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->size(), 2u);
  std::remove(path.c_str());
}

// ------------------------------------------------------- solver fallbacks

TEST_F(FaultInjectionTest, IlpNodeBudgetExhaustionFallsBackToDp) {
  core::Options opts;
  opts.workspace_policy = core::WorkspacePolicy::kWD;
  opts.total_workspace_size = std::size_t{32} << 20;
  opts.wd_solver = core::WdSolver::kBranchBoundIlp;
  opts.ilp_max_nodes = 0;  // exhaust the budget immediately
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::p100_sxm2_spec()), opts);
  const kernels::ConvProblem p1({16, 16, 14, 14}, {16, 16, 3, 3},
                                {.pad_h = 1, .pad_w = 1});
  const kernels::ConvProblem p2({16, 8, 12, 12}, {8, 8, 3, 3},
                                {.pad_h = 1, .pad_w = 1});
  handle.get_algorithm(ConvKernelType::kForward, p1,
                       mcudnn::AlgoPreference::kPreferFastest, 0);
  handle.get_algorithm(ConvKernelType::kForward, p2,
                       mcudnn::AlgoPreference::kPreferFastest, 0);
  handle.finalize_wd();
  EXPECT_TRUE(handle.wd_finalized());
  ASSERT_NE(handle.wd_plan(), nullptr);
  EXPECT_TRUE(handle.wd_plan()->solver_fell_back);
  EXPECT_EQ(handle.degradation_stats().solver_fallbacks, 1u);
  handle.convolution(ConvKernelType::kForward, p1, 1.0f, nullptr, nullptr,
                     0.0f, nullptr);
}

TEST_F(FaultInjectionTest, InfeasibleWdPlanDegradesToPerKernelWr) {
  core::Options opts;
  opts.workspace_policy = core::WorkspacePolicy::kWD;
  opts.total_workspace_size = std::size_t{32} << 20;
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::UcudnnHandle handle(dev, opts);
  const kernels::ConvProblem fwd_p({16, 16, 14, 14}, {16, 16, 3, 3},
                                   {.pad_h = 1, .pad_w = 1});
  const kernels::ConvProblem bwd_p = fwd_p;
  handle.get_algorithm(ConvKernelType::kForward, fwd_p,
                       mcudnn::AlgoPreference::kPreferFastest, 0);
  handle.get_algorithm(ConvKernelType::kBackwardFilter, bwd_p,
                       mcudnn::AlgoPreference::kPreferFastest, 0);
  // Blacklist every BackwardFilter algorithm: the recorded kernel set has no
  // feasible WD division, so the handle must degrade to per-kernel WR and
  // still execute the healthy forward kernel.
  for (int algo = 0; algo < kernels::algo_count(ConvKernelType::kBackwardFilter);
       ++algo) {
    handle.cache()->blacklist(dev->spec().name, ConvKernelType::kBackwardFilter,
                              algo);
  }
  handle.convolution(ConvKernelType::kForward, fwd_p, 1.0f, nullptr, nullptr,
                     0.0f, nullptr);
  EXPECT_FALSE(handle.wd_finalized());
  EXPECT_EQ(handle.degradation_stats().solver_fallbacks, 1u);
  EXPECT_NE(handle.configuration_for(ConvKernelType::kForward, fwd_p), nullptr);
}

// ------------------------------------------------------------- fault soak
//
// Deterministic workload machinery. All plans come from a prefilled cache:
//   winner      time 1.0 + 0.01*size   (division-invariant, workspace > 0)
//   runner-up   time 100 + 0.01*size   (division-invariant, small workspace)
//   last resort time 10000 + 0.01*size (zero workspace)
// so the fault-free baseline picks the undivided winner everywhere, alloc
// degradation walks down the winner's (linear) workspace curve, and a
// blacklisted winner falls to the runner-up.

struct SoakLayer {
  ConvKernelType type;
  kernels::ConvProblem problem;
};

std::vector<SoakLayer> soak_layers() {
  const kernels::ConvProblem c1({8, 3, 12, 12}, {8, 3, 3, 3},
                                {.pad_h = 1, .pad_w = 1});
  const kernels::ConvProblem c2({8, 8, 12, 12}, {8, 8, 3, 3},
                                {.pad_h = 1, .pad_w = 1});
  return {{ConvKernelType::kForward, c1},
          {ConvKernelType::kForward, c2},
          {ConvKernelType::kBackwardFilter, c2},
          {ConvKernelType::kBackwardData, c2}};
}

std::vector<int> preferred_algos(ConvKernelType type) {
  switch (type) {
    case ConvKernelType::kForward:
      return {kernels::fwd_algo::kGemm, kernels::fwd_algo::kImplicitPrecompGemm,
              kernels::fwd_algo::kDirect};
    case ConvKernelType::kBackwardFilter:
      return {kernels::bwd_filter_algo::kAlgo1,
              kernels::bwd_filter_algo::kAlgo0};
    case ConvKernelType::kBackwardData:
      return {kernels::bwd_data_algo::kAlgo1, kernels::bwd_data_algo::kAlgo0};
  }
  return {};
}

void prefill_cache(core::UcudnnHandle& handle) {
  const std::string& device_name = handle.device().spec().name;
  for (const SoakLayer& layer : soak_layers()) {
    const auto sizes = core::candidate_micro_sizes(
        core::BatchSizePolicy::kPowerOfTwo, layer.problem.batch());
    for (const std::int64_t size : sizes) {
      const kernels::ConvProblem sub = layer.problem.with_batch(size);
      std::vector<mcudnn::AlgoPerf> perfs;
      double base = 1.0;
      for (const int algo : preferred_algos(layer.type)) {
        if (!kernels::algo_supported(layer.type, algo, sub)) continue;
        mcudnn::AlgoPerf perf;
        perf.algo = algo;
        perf.status = Status::kSuccess;
        perf.time_ms = base + 0.01 * static_cast<double>(size);
        perf.memory = kernels::algo_workspace(layer.type, algo, sub);
        perfs.push_back(perf);
        base *= 100.0;
      }
      handle.cache()->store(device_name, layer.type, layer.problem, size,
                            perfs);
    }
  }
}

// Per-kernel limit that fits each layer's undivided winner exactly.
std::size_t soak_limit() {
  std::size_t limit = 0;
  for (const SoakLayer& layer : soak_layers()) {
    limit = std::max(limit,
                     kernels::algo_workspace(layer.type,
                                             preferred_algos(layer.type)[0],
                                             layer.problem));
  }
  return limit;
}

std::vector<std::vector<float>> run_workload(core::UcudnnHandle& handle,
                                             int iterations) {
  const auto layers = soak_layers();
  std::vector<std::vector<float>> outputs(layers.size());
  for (int iter = 0; iter < iterations; ++iter) {
    for (std::size_t li = 0; li < layers.size(); ++li) {
      const SoakLayer& layer = layers[li];
      const kernels::ConvProblem& p = layer.problem;
      std::int64_t a_count = p.x.count(), b_count = p.w.count(),
                   out_count = p.y.count();
      if (layer.type == ConvKernelType::kBackwardData) {
        a_count = p.y.count();
        out_count = p.x.count();
      } else if (layer.type == ConvKernelType::kBackwardFilter) {
        b_count = p.y.count();
        out_count = p.w.count();
      }
      std::vector<float> a(static_cast<std::size_t>(a_count));
      std::vector<float> b(static_cast<std::size_t>(b_count));
      std::vector<float> out(static_cast<std::size_t>(out_count), 0.0f);
      fill_random(a.data(), a_count, 31 * static_cast<std::uint64_t>(li) + 1);
      fill_random(b.data(), b_count, 31 * static_cast<std::uint64_t>(li) + 2);
      handle.convolution(layer.type, p, 1.0f, a.data(), b.data(), 0.0f,
                         out.data());
      outputs[li] = std::move(out);
    }
  }
  return outputs;
}

constexpr int kSoakIterations = 5;

std::vector<std::vector<float>> run_soak(const std::string& faults,
                                         core::DegradationStats* stats,
                                         const std::string& cache_path = "") {
  FaultInjector::instance().configure(faults);
  core::Options opts;
  opts.workspace_limit = soak_limit();
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.cache_path = cache_path;
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), opts);
  prefill_cache(handle);
  auto outputs = run_workload(handle, kSoakIterations);
  if (stats != nullptr) *stats = handle.degradation_stats();
  FaultInjector::instance().configure("");
  return outputs;
}

void expect_bitwise_equal(const std::vector<std::vector<float>>& got,
                          const std::vector<std::vector<float>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t li = 0; li < got.size(); ++li) {
    ASSERT_EQ(got[li].size(), want[li].size()) << "layer " << li;
    EXPECT_EQ(std::memcmp(got[li].data(), want[li].data(),
                          got[li].size() * sizeof(float)),
              0)
        << "layer " << li << " outputs differ bitwise";
  }
}

class FaultSoakTest : public FaultInjectionTest {};

TEST_F(FaultSoakTest, FaultFreeRunReportsNoDegradation) {
  core::DegradationStats stats;
  const auto outputs = run_soak("", &stats);
  EXPECT_FALSE(stats.any());
  for (const auto& out : outputs) {
    ASSERT_FALSE(out.empty());
    for (const float v : out) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(FaultSoakTest, TransientKernelFaultsRetryBitwiseIdentical) {
  core::DegradationStats baseline_stats;
  const auto baseline = run_soak("", &baseline_stats);

  // 4 kernel launches per iteration, 5 iterations; every 7th launch fails
  // once and is retried: 20 launches + 3 retries = 23 checks, 3 triggers.
  core::DegradationStats stats;
  FaultInjector::instance().configure("kernel:every=7");
  core::Options opts;
  opts.workspace_limit = soak_limit();
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), opts);
  prefill_cache(handle);
  const auto outputs = run_workload(handle, kSoakIterations);
  stats = handle.degradation_stats();
  EXPECT_EQ(FaultInjector::instance().stats(FaultSite::kKernel).checks, 23u);
  EXPECT_EQ(FaultInjector::instance().stats(FaultSite::kKernel).triggered, 3u);
  FaultInjector::instance().configure("");

  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.blacklisted_algorithms, 0u);
  expect_bitwise_equal(outputs, baseline);
}

TEST_F(FaultSoakTest, AllocFaultsDegradeBitwiseIdentical) {
  const auto baseline = run_soak("", nullptr);

  // The first workspace allocation fails twice: the fwd GEMM winner's
  // workspace is linear in the batch, so limit halving walks 8 -> [4,4] ->
  // [2,2,2,2] while staying on the same division-invariant algorithm.
  core::DegradationStats stats;
  const auto outputs = run_soak("alloc:every=1,count=2", &stats);
  EXPECT_EQ(stats.degraded_allocations, 2u);
  EXPECT_EQ(stats.retries, 0u);
  expect_bitwise_equal(outputs, baseline);
}

TEST_F(FaultSoakTest, CorruptCacheFileQuarantinedBitwiseIdentical) {
  const auto baseline = run_soak("", nullptr);

  const std::string path =
      (std::filesystem::temp_directory_path() / "ucudnn_fault_soak_cache.db")
          .string();
  {
    std::ofstream out(path);
    out << "x5fjq\x01garbage\n";
  }
  core::DegradationStats stats;
  const auto outputs = run_soak("", &stats, path);
  EXPECT_EQ(stats.cache_quarantines, 1u);
  expect_bitwise_equal(outputs, baseline);
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
}

TEST_F(FaultSoakTest, RetryExhaustionBlacklistsAndReplans) {
  const auto baseline = run_soak("", nullptr);

  // The very first launch (fwd GEMM) fails four times in a row: three
  // retries burn out, the algorithm is blacklisted, and the remaining batch
  // re-plans onto the runner-up. Outputs legitimately change algorithm here,
  // so the assertion is tolerance-based, not bitwise.
  core::DegradationStats stats;
  const auto outputs = run_soak("kernel:every=1,count=4", &stats);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.blacklisted_algorithms, 1u);
  ASSERT_EQ(outputs.size(), baseline.size());
  for (std::size_t li = 0; li < outputs.size(); ++li) {
    ASSERT_EQ(outputs[li].size(), baseline[li].size());
    EXPECT_LT(max_rel_diff(outputs[li].data(), baseline[li].data(),
                           static_cast<std::int64_t>(baseline[li].size())),
              1e-3)
        << "layer " << li;
  }
}

// Soak-runner entry point: the `fault_soak` ctest runs exactly this test
// with UCUDNN_FAULTS set in the environment (see tests/CMakeLists.txt), so
// the schedule exercises the env-configured path end to end. Without the
// variable it degenerates to a fault-free run.
TEST(FaultSoakEnvTest, CompletesUnderEnvSchedule) {
  core::Options opts;
  opts.workspace_limit = soak_limit();
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), opts);
  prefill_cache(handle);
  const auto outputs = run_workload(handle, 8);
  for (const auto& out : outputs) {
    ASSERT_FALSE(out.empty());
    for (const float v : out) ASSERT_TRUE(std::isfinite(v));
  }
  if (FaultInjector::instance().armed()) {
    EXPECT_GT(FaultInjector::instance().stats(FaultSite::kAlloc).triggered +
                  FaultInjector::instance().stats(FaultSite::kKernel).triggered,
              0u);
  }
}

}  // namespace
}  // namespace ucudnn
