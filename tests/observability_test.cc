// Unit tests for the observability additions of docs/observability.md:
// the flight recorder's seqlock rings (wrap, drop accounting, snapshot
// consistency, JSON dump shape), request-scoped trace ids (ambient
// TraceContext propagation, span cap + dropped counter, the
// ucudnn-request-trace-v1 export), and the anomaly watchdog (threshold
// evaluation, rising-edge dedup, failure capture, flight integration,
// adversarial construct/destroy ordering).
//
// Everything here uses test-local FlightRecorder instances and poll_now()-
// driven watchdogs, so the tests are deterministic and never arm the
// process-wide singleton. The end-to-end singleton paths (exit dump,
// dump-on-fault) live in request_trace_test.cc and the obs_exit_dump ctest
// fixture.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_validator.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"

namespace ucudnn::telemetry {
namespace {

std::string temp_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/" + stem + "_" +
         std::to_string(static_cast<unsigned long long>(::getpid()));
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

// --- flight recorder ring ---------------------------------------------------

TEST(FlightRecorderTest, RecordsEventsWithFieldsIntact) {
  FlightRecorder recorder(/*events_per_thread=*/64, /*dump_path=*/"");
  ASSERT_TRUE(recorder.is_armed());  // test ctor arms immediately
  recorder.record(FlightEventKind::kMark, "alpha", /*trace_id=*/7, 1, 2);
  recorder.record(FlightEventKind::kOverload, "rung", 0, 3, 1);

  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "alpha");
  EXPECT_EQ(events[0].kind, FlightEventKind::kMark);
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_EQ(events[0].arg0, 1);
  EXPECT_EQ(events[0].arg1, 2);
  EXPECT_STREQ(events[1].name, "rung");
  EXPECT_EQ(events[1].kind, FlightEventKind::kOverload);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);  // snapshot is time-sorted
  EXPECT_EQ(recorder.recorded(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderTest, DisarmedRecorderRecordsNothing) {
  FlightRecorder recorder(64, "");
  recorder.set_armed(false);
  recorder.record(FlightEventKind::kMark, "ignored");
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorderTest, RingWrapDropsOldestKeepsNewest) {
  // Capacity below the 16-slot floor is clamped up: ask for 16 exactly.
  FlightRecorder recorder(16, "");
  ASSERT_EQ(recorder.capacity_per_thread(), 16u);
  for (int i = 0; i < 40; ++i) {
    recorder.record(FlightEventKind::kMark, "wrap", 0, i, 0);
  }
  EXPECT_EQ(recorder.recorded(), 40u);
  EXPECT_EQ(recorder.dropped(), 24u);  // 40 written - 16 retained

  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 16u);
  // Drop-oldest: the survivors are exactly writes 24..39, in order.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].arg0, 24 + i) << "slot " << i;
  }
}

TEST(FlightRecorderTest, PerThreadRingsMergeIntoOneTimeline) {
  FlightRecorder recorder(32, "");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record(FlightEventKind::kMark, "mt", 0, t, i);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(FlightRecorderTest, InternReturnsStablePointerPerString) {
  FlightRecorder recorder(16, "");
  const char* a = recorder.intern("dynamic.name");
  const char* b = recorder.intern("dynamic.name");
  const char* c = recorder.intern("other.name");
  EXPECT_EQ(a, b);  // idempotent: same storage
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "dynamic.name");
  recorder.record(FlightEventKind::kFault, a, 0, 1, 0);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, a);
}

TEST(FlightRecorderTest, ToJsonIsValidAndCarriesSchema) {
  FlightRecorder recorder(16, "");
  recorder.record(FlightEventKind::kStatus, "kSuccess", 42, 0, 0);
  recorder.record(FlightEventKind::kMark, "quote\"me", 0, 0, 0);
  const std::string json = recorder.to_json();
  EXPECT_TRUE(ucudnn::test::JsonValidator(json).validate()) << json;
  EXPECT_NE(json.find("\"schema\":\"ucudnn-flight-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\""), std::string::npos);   // kind name
  EXPECT_NE(json.find("\"trace\":42"), std::string::npos);
}

TEST(FlightRecorderTest, DumpWritesFileAndAutoDumpRateLimits) {
  const std::string path = temp_path("flight_dump");
  FlightRecorder recorder(16, path);
  recorder.record(FlightEventKind::kMark, "dumped", 0, 0, 0);

  EXPECT_TRUE(recorder.auto_dump("test"));
  EXPECT_EQ(recorder.dump_count(), 1u);
  // Immediately again: inside the rate-limit window, refused.
  EXPECT_FALSE(recorder.auto_dump("test"));
  EXPECT_EQ(recorder.dump_count(), 1u);

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(ucudnn::test::JsonValidator(text).validate()) << text;
  // The dump records its own reason as a flight.dump mark first.
  EXPECT_NE(text.find("flight.dump"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, AutoDumpWithoutPathIsANoOp) {
  FlightRecorder recorder(16, "");
  recorder.record(FlightEventKind::kMark, "kept", 0, 0, 0);
  EXPECT_FALSE(recorder.auto_dump("nowhere"));
  EXPECT_EQ(recorder.dump_count(), 0u);
}

TEST(FlightRecorderTest, ClearResetsCountersAndContents) {
  FlightRecorder recorder(16, "");
  for (int i = 0; i < 20; ++i) {
    recorder.record(FlightEventKind::kMark, "x", 0, i, 0);
  }
  ASSERT_GT(recorder.dropped(), 0u);
  recorder.clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

// --- request-scoped trace ids ----------------------------------------------

TEST(TraceContextTest, AmbientIdNestsAndRestores) {
  EXPECT_EQ(current_trace_id(), 0u);
  const std::uint64_t outer = next_trace_id();
  const std::uint64_t inner = next_trace_id();
  ASSERT_NE(outer, 0u);
  ASSERT_NE(inner, outer);
  {
    TraceContext outer_scope(outer);
    EXPECT_EQ(current_trace_id(), outer);
    {
      TraceContext inner_scope(inner);
      EXPECT_EQ(current_trace_id(), inner);
    }
    EXPECT_EQ(current_trace_id(), outer);
  }
  EXPECT_EQ(current_trace_id(), 0u);
}

TEST(TraceContextTest, AmbientIdIsPerThread) {
  const std::uint64_t id = next_trace_id();
  TraceContext scope(id);
  std::uint64_t seen_on_other_thread = 1;  // sentinel != 0
  std::thread([&seen_on_other_thread] {
    seen_on_other_thread = current_trace_id();
  }).join();
  EXPECT_EQ(seen_on_other_thread, 0u);  // context does not leak across threads
  EXPECT_EQ(current_trace_id(), id);
}

TEST(TraceContextTest, SpansInheritTheAmbientId) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.clear();
  const std::uint64_t id = next_trace_id();
  {
    TraceContext scope(id);
    ScopedSpan span("obs_test_scoped");
  }
  { ScopedSpan span("obs_test_unscoped"); }
  recorder.set_enabled(false);

  const std::vector<SpanEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "obs_test_scoped");
  EXPECT_EQ(events[0].trace_id, id);
  EXPECT_EQ(events[1].trace_id, 0u);
  recorder.clear();
}

TEST(TraceCapTest, DropOldestCountsEvictionsAndMetric) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.clear();
  const std::size_t old_cap = recorder.max_spans();
  const std::uint64_t dropped_before = recorder.dropped_spans();
  const std::uint64_t metric_before = MetricsRegistry::instance()
                                          .counter("ucudnn.trace.dropped")
                                          .value();

  recorder.set_max_spans(4);
  for (int i = 0; i < 10; ++i) {
    SpanEvent event;
    event.name = "cap_span_" + std::to_string(i);
    recorder.record(std::move(event));
  }
  const std::vector<SpanEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // Drop-oldest: the survivors are the last four records.
  EXPECT_EQ(events.front().name, "cap_span_6");
  EXPECT_EQ(events.back().name, "cap_span_9");
  EXPECT_EQ(recorder.dropped_spans() - dropped_before, 6u);
  EXPECT_EQ(MetricsRegistry::instance().counter("ucudnn.trace.dropped").value()
                - metric_before,
            6u);

  recorder.set_enabled(false);
  recorder.set_max_spans(old_cap);
  recorder.clear();
}

TEST(RequestTraceJsonTest, GroupsSpansByTraceId) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.clear();

  const std::uint64_t req_a = next_trace_id();
  const std::uint64_t req_b = next_trace_id();
  auto record = [&recorder](const char* name, std::uint64_t id, double ts,
                            double dur) {
    SpanEvent event;
    event.name = name;
    event.trace_id = id;
    event.ts_us = ts;
    event.dur_us = dur;
    recorder.record(std::move(event));
  };
  // Out of order on purpose: the export sorts within each request.
  record("exec", req_a, 30.0, 5.0);
  record("admit", req_a, 10.0, 1.0);
  record("admit", req_b, 12.0, 1.0);
  record("unscoped", 0, 1.0, 1.0);  // never exported: no trace id

  const std::string json = recorder.request_trace_json();
  recorder.set_enabled(false);
  recorder.clear();

  EXPECT_TRUE(ucudnn::test::JsonValidator(json).validate()) << json;
  EXPECT_NE(json.find("\"schema\":\"ucudnn-request-trace-v1\""),
            std::string::npos);
  EXPECT_EQ(json.find("unscoped"), std::string::npos);
  const std::size_t pos_a = json.find("\"trace_id\":" + std::to_string(req_a));
  const std::size_t pos_b = json.find("\"trace_id\":" + std::to_string(req_b));
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  // Within request A the admit span (ts 10) precedes exec (ts 30) even
  // though it was recorded second.
  const std::size_t admit_pos = json.find("admit", pos_a);
  const std::size_t exec_pos = json.find("exec", pos_a);
  ASSERT_NE(admit_pos, std::string::npos);
  ASSERT_NE(exec_pos, std::string::npos);
  EXPECT_LT(admit_pos, exec_pos);
}

TEST(RequestTraceJsonTest, SpanOpenEmitsFlightEventWhenOnlyFlightArmed) {
  // ScopedSpan with the trace recorder OFF but a flight recorder armed:
  // the singleton mirror is what ScopedSpan polls, so arm it briefly.
  FlightRecorder& flight = FlightRecorder::instance();
  TraceRecorder& recorder = TraceRecorder::instance();
  ASSERT_FALSE(recorder.enabled());
  const std::uint64_t before = flight.recorded();
  flight.set_armed(true);
  const std::uint64_t id = next_trace_id();
  {
    TraceContext scope(id);
    ScopedSpan span("obs_flight_only");
  }
  flight.set_armed(false);

  EXPECT_GE(flight.recorded() - before, 2u);  // open + close
  bool saw_open = false, saw_close = false;
  for (const FlightEvent& event : flight.snapshot()) {
    if (event.trace_id != id) continue;
    if (event.kind == FlightEventKind::kSpanOpen) saw_open = true;
    if (event.kind == FlightEventKind::kSpanClose) saw_close = true;
  }
  EXPECT_TRUE(saw_open);
  EXPECT_TRUE(saw_close);
  // And nothing reached the (disabled) trace recorder.
  EXPECT_TRUE(recorder.events().empty());
}

// --- anomaly watchdog -------------------------------------------------------

WatchdogOptions quiet_options() {
  WatchdogOptions opts;
  opts.period_ms = 0;  // poll_now()-driven
  opts.dump_on_incident = false;
  return opts;
}

TEST(WatchdogTest, OverloadIncidentFiresOnRisingEdgeOnly) {
  WatchdogSample sample;
  Watchdog watchdog(quiet_options(), [&sample] { return sample; });

  EXPECT_EQ(watchdog.poll_now(), 0u);  // all vitals nominal
  sample.overload_level = 3;           // at the default threshold
  EXPECT_EQ(watchdog.poll_now(), 1u);  // rising edge
  EXPECT_EQ(watchdog.poll_now(), 0u);  // still firing: deduped
  sample.overload_level = 0;
  EXPECT_EQ(watchdog.poll_now(), 0u);  // cleared
  sample.overload_level = 4;
  EXPECT_EQ(watchdog.poll_now(), 1u);  // re-fires after clearing

  const std::vector<WatchdogIncident> incidents = watchdog.incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].kind, "overload");
  EXPECT_EQ(incidents[0].value, 3.0);
  EXPECT_EQ(incidents[1].value, 4.0);
  EXPECT_EQ(watchdog.sample_count(), 5u);
}

TEST(WatchdogTest, QueueSaturationNeedsKnownCapacity) {
  WatchdogSample sample;
  Watchdog watchdog(quiet_options(), [&sample] { return sample; });

  sample.queue_depth = 100;
  sample.queue_capacity = 0;           // unknown: check skipped
  EXPECT_EQ(watchdog.poll_now(), 0u);
  sample.queue_capacity = 100;         // depth >= capacity
  EXPECT_EQ(watchdog.poll_now(), 1u);
  ASSERT_EQ(watchdog.incidents().size(), 1u);
  EXPECT_EQ(watchdog.incidents()[0].kind, "queue_saturated");
}

TEST(WatchdogTest, WorkerStuckUsesEstimateScaledThreshold) {
  WatchdogOptions opts = quiet_options();
  opts.stuck_factor = 4.0;
  opts.min_stuck_ms = 10.0;
  WatchdogSample sample;
  sample.service_estimate_ms = 5.0;  // threshold = max(4*5, 10) = 20ms
  Watchdog watchdog(opts, [&sample] { return sample; });

  sample.worker_busy_ms = {1.0, 19.0};
  EXPECT_EQ(watchdog.poll_now(), 0u);
  sample.worker_busy_ms = {1.0, 21.0};
  EXPECT_EQ(watchdog.poll_now(), 1u);
  const std::vector<WatchdogIncident> incidents = watchdog.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, "worker_stuck");
  EXPECT_EQ(incidents[0].value, 21.0);
  EXPECT_EQ(incidents[0].threshold, 20.0);
}

TEST(WatchdogTest, DriftIncidentAndThrowingSamplerAreCaptured) {
  WatchdogSample sample;
  bool explode = false;
  Watchdog watchdog(quiet_options(), [&sample, &explode] {
    if (explode) throw std::runtime_error("probe lost");
    return sample;
  });

  sample.est_drift = 6.0;  // above the default 5.0 threshold
  EXPECT_EQ(watchdog.poll_now(), 1u);
  EXPECT_EQ(watchdog.incidents()[0].kind, "est_drift");

  explode = true;
  EXPECT_EQ(watchdog.poll_now(), 1u);
  const std::vector<WatchdogIncident> incidents = watchdog.incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[1].kind, "sample_failed");
  // A failed sample does not count as a successful one.
  EXPECT_EQ(watchdog.sample_count(), 1u);
}

TEST(WatchdogTest, IncidentRecordsFlightEventAndDumps) {
  const std::string path = temp_path("watchdog_dump");
  FlightRecorder recorder(32, path);
  WatchdogOptions opts = quiet_options();
  opts.dump_on_incident = true;
  WatchdogSample sample;
  Watchdog watchdog(opts, [&sample] { return sample; }, &recorder);

  sample.overload_level = 5;
  EXPECT_EQ(watchdog.poll_now(), 1u);

  bool saw_watchdog_event = false;
  for (const FlightEvent& event : recorder.snapshot()) {
    if (event.kind == FlightEventKind::kWatchdog) {
      saw_watchdog_event = true;
      EXPECT_STREQ(event.name, "overload");
      EXPECT_EQ(event.arg0, 5);
    }
  }
  EXPECT_TRUE(saw_watchdog_event);
  EXPECT_EQ(recorder.dump_count(), 1u);
  const std::string text = slurp(path);
  EXPECT_TRUE(ucudnn::test::JsonValidator(text).validate());
  std::remove(path.c_str());
}

TEST(WatchdogTest, BackgroundThreadSamplesUntilStopped) {
  WatchdogOptions opts = quiet_options();
  opts.period_ms = 2;
  std::atomic<int> calls{0};
  Watchdog watchdog(opts, [&calls] {
    calls.fetch_add(1);
    return WatchdogSample{};
  });
  ASSERT_TRUE(watchdog.running());
  for (int i = 0; i < 500 && calls.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(calls.load(), 0);
  watchdog.stop();
  EXPECT_FALSE(watchdog.running());
  const int after_stop = calls.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(calls.load(), after_stop);  // really stopped
  watchdog.stop();                      // idempotent
}

TEST(WatchdogTest, AdversarialConstructDestroyOrderIsSafe) {
  // Owner tears down in the "wrong" order: the recorder the watchdog was
  // given dies first. stop() severs the pointer, making this safe — the
  // discipline Server::drain() follows.
  auto recorder = std::make_unique<FlightRecorder>(32, std::string());
  WatchdogOptions opts = quiet_options();
  opts.period_ms = 1;
  opts.dump_on_incident = true;
  WatchdogSample sample;
  sample.overload_level = 9;  // every poll wants to touch the recorder
  auto watchdog = std::make_unique<Watchdog>(
      opts, [&sample] { return sample; }, recorder.get());
  for (int i = 0; i < 100 && watchdog->sample_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  watchdog->stop();
  recorder.reset();           // recorder gone first
  EXPECT_EQ(watchdog->poll_now(), 0u);  // still-firing level: deduped, no touch
  watchdog.reset();

  // And the reverse order with no explicit stop(): the watchdog destructor
  // stops the thread while the recorder is still alive.
  auto recorder2 = std::make_unique<FlightRecorder>(32, std::string());
  auto watchdog2 = std::make_unique<Watchdog>(
      opts, [&sample] { return sample; }, recorder2.get());
  watchdog2.reset();
  EXPECT_GE(recorder2->recorded(), 0u);
  recorder2.reset();
}

// --- env-driven exit-dump fixture -------------------------------------------

// Run by the obs_exit_dump_run ctest with UCUDNN_FLIGHT_FILE set: arms the
// singleton through the environment, records events, and relies on the
// process-exit dump; obs_exit_dump_check then validates the file. Skips
// itself in a normal gtest sweep (no env, nothing to assert).
TEST(ExitDumpScenario, RecordsThroughTheSingleton) {
  const char* path = std::getenv("UCUDNN_FLIGHT_FILE");
  if (path == nullptr || path[0] == '\0') {
    GTEST_SKIP() << "UCUDNN_FLIGHT_FILE not set; exercised by the "
                    "obs_exit_dump ctest fixture";
  }
  FlightRecorder& flight = FlightRecorder::instance();
  ASSERT_TRUE(flight.is_armed());  // armed by UCUDNN_FLIGHT_FILE
  ASSERT_TRUE(FlightRecorder::armed());
  EXPECT_EQ(flight.dump_path(), std::string(path));
  const std::uint64_t id = next_trace_id();
  {
    TraceContext scope(id);
    ScopedSpan span("exit_dump_span");
    FlightRecorder::note(FlightEventKind::kMark, "exit_dump_mark", id, 1, 2);
  }
  EXPECT_GE(flight.recorded(), 3u);  // mark + span open/close
  // No dump here: the destructor's exit dump is the thing under test.
}

}  // namespace
}  // namespace ucudnn::telemetry
