// Unit and property tests for the FFT substrate: agreement with a direct
// DFT, roundtrip identity, linearity, Parseval, and the convolution theorem
// (the property the FFT convolution kernels rely on).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <vector>

#include "common/status.h"
#include "fft/fft.h"

namespace ucudnn {
namespace {

using fft::Complex;

std::vector<Complex> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(dist(rng), dist(rng));
  return v;
}

std::vector<Complex> dft_reference(const std::vector<Complex>& in,
                                   bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * t) / static_cast<double>(n);
      acc += std::complex<double>(in[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (inverse) acc /= static_cast<double>(n);
    out[k] = Complex(static_cast<float>(acc.real()),
                     static_cast<float>(acc.imag()));
  }
  return out;
}

double max_err(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double e = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    e = std::max(e, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return e;
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesDirectDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 17);
  const auto expected = dft_reference(signal, false);
  fft::fft(signal.data(), n, false);
  EXPECT_LT(max_err(signal, expected), 1e-3 * std::sqrt(static_cast<double>(n)));
}

TEST_P(FftSizeTest, RoundtripIsIdentity) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 23);
  auto signal = original;
  fft::fft(signal.data(), n, false);
  fft::fft(signal.data(), n, true);
  EXPECT_LT(max_err(signal, original), 1e-4 * std::sqrt(static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwoAndOddSizes, FftSizeTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 3, 5, 7,
                                           12, 15, 31, 100, 243));

TEST(FftTest, Pow2RejectsNonPowerOfTwo) {
  std::vector<Complex> v(3);
  EXPECT_THROW(fft::fft_pow2(v.data(), 3, false), Error);
}

TEST(FftTest, DeltaTransformsToAllOnes) {
  std::vector<Complex> v(8, Complex(0, 0));
  v[0] = Complex(1, 0);
  fft::fft(v.data(), 8, false);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0f, 1e-5);
    EXPECT_NEAR(x.imag(), 0.0f, 1e-5);
  }
}

TEST(FftTest, LinearityProperty) {
  const std::size_t n = 64;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0f * a[i] + 3.0f * b[i];

  auto fa = a, fb = b, fsum = sum;
  fft::fft(fa.data(), n, false);
  fft::fft(fb.data(), n, false);
  fft::fft(fsum.data(), n, false);
  std::vector<Complex> combined(n);
  for (std::size_t i = 0; i < n; ++i) combined[i] = 2.0f * fa[i] + 3.0f * fb[i];
  EXPECT_LT(max_err(fsum, combined), 1e-3);
}

TEST(FftTest, ParsevalEnergyPreserved) {
  const std::size_t n = 128;
  const auto a = random_signal(n, 3);
  double time_energy = 0;
  for (const auto& x : a) time_energy += std::norm(std::complex<double>(x));
  auto fa = a;
  fft::fft(fa.data(), n, false);
  double freq_energy = 0;
  for (const auto& x : fa) freq_energy += std::norm(std::complex<double>(x));
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-2 * time_energy);
}

TEST(FftTest, ConvolutionTheoremCircular) {
  // IFFT(FFT(a) .* FFT(b)) equals circular convolution of a and b.
  const std::size_t n = 32;
  const auto a = random_signal(n, 4);
  const auto b = random_signal(n, 5);

  std::vector<Complex> expected(n, Complex(0, 0));
  for (std::size_t i = 0; i < n; ++i) {
    std::complex<double> acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      acc += std::complex<double>(a[j]) *
             std::complex<double>(b[(i + n - j) % n]);
    }
    expected[i] = Complex(static_cast<float>(acc.real()),
                          static_cast<float>(acc.imag()));
  }

  auto fa = a, fb = b;
  fft::fft(fa.data(), n, false);
  fft::fft(fb.data(), n, false);
  std::vector<Complex> prod(n, Complex(0, 0));
  fft::multiply_accumulate(fa.data(), fb.data(), prod.data(), n);
  fft::fft(prod.data(), n, true);
  EXPECT_LT(max_err(prod, expected), 1e-3);
}

TEST(FftTest, CorrelationTheoremViaConjugate) {
  // IFFT(FFT(a) .* conj(FFT(b))) equals circular cross-correlation: the
  // identity the cross-correlation convolution mode is built on.
  const std::size_t n = 16;
  const auto a = random_signal(n, 6);
  const auto b = random_signal(n, 7);

  std::vector<Complex> expected(n);
  for (std::size_t p = 0; p < n; ++p) {
    std::complex<double> acc(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      acc += std::complex<double>(a[(p + t) % n]) *
             std::conj(std::complex<double>(b[t]));
    }
    expected[p] = Complex(static_cast<float>(acc.real()),
                          static_cast<float>(acc.imag()));
  }

  auto fa = a, fb = b;
  fft::fft(fa.data(), n, false);
  fft::fft(fb.data(), n, false);
  std::vector<Complex> prod(n, Complex(0, 0));
  fft::multiply_conj_accumulate(fa.data(), fb.data(), prod.data(), n);
  fft::fft(prod.data(), n, true);
  EXPECT_LT(max_err(prod, expected), 1e-3);
}

TEST(Fft2dTest, MatchesSeparableReference) {
  const std::size_t rows = 8, cols = 4;
  auto m = random_signal(rows * cols, 8);
  auto expected = m;
  // Reference: DFT rows then DFT columns.
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Complex> row(expected.begin() + r * cols,
                             expected.begin() + (r + 1) * cols);
    row = dft_reference(row, false);
    std::copy(row.begin(), row.end(), expected.begin() + r * cols);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    std::vector<Complex> col(rows);
    for (std::size_t r = 0; r < rows; ++r) col[r] = expected[r * cols + c];
    col = dft_reference(col, false);
    for (std::size_t r = 0; r < rows; ++r) expected[r * cols + c] = col[r];
  }
  fft::fft2d(m.data(), rows, cols, false);
  EXPECT_LT(max_err(m, expected), 1e-3);
}

TEST(Fft2dTest, RoundtripIsIdentity) {
  const std::size_t rows = 16, cols = 32;
  const auto original = random_signal(rows * cols, 9);
  auto m = original;
  fft::fft2d(m.data(), rows, cols, false);
  fft::fft2d(m.data(), rows, cols, true);
  EXPECT_LT(max_err(m, original), 1e-3);
}

}  // namespace
}  // namespace ucudnn
