// Cross-module integration tests: whole-framework numeric equivalence under
// different μ-cuDNN policies, cross-framework parity, cache persistence
// across handles, multi-device benchmarking through the handle, and failure
// injection (device OOM, infeasible WD).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/ucudnn.h"
#include "frameworks/caffepp/model_zoo.h"
#include "frameworks/caffepp/net.h"
#include "frameworks/tfmini/tfmini.h"

namespace ucudnn {
namespace {

std::shared_ptr<device::Device> cpu() {
  return std::make_shared<device::Device>(device::host_cpu_spec());
}

core::Options wr(std::size_t limit, core::BatchSizePolicy policy =
                                        core::BatchSizePolicy::kPowerOfTwo) {
  core::Options opts;
  opts.batch_size_policy = policy;
  opts.workspace_limit = limit;
  return opts;
}

// Builds a small but representative net and returns (output, input-grad,
// one conv weight grad) after forward+backward with deterministic init.
struct NetResult {
  std::vector<float> output;
  std::vector<float> input_grad;
};

NetResult run_small_net(core::UcudnnHandle& handle) {
  caffepp::Net net(handle, "itest", caffepp::NetOptions{1 << 20, true});
  net.input("data", {6, 3, 14, 14});
  std::string top = net.conv("c1", "data", 8, 3, 1, 1);
  top = net.relu("r1", top);
  top = net.conv("c2", top, 8, 3, 1, 1);
  top = net.pool_max("p1", top, 2, 2);
  top = net.fc("f1", top, 10);
  top = net.softmax_loss("loss", top);
  net.init(99);
  net.forward();
  net.backward();

  NetResult result;
  caffepp::Blob* out = net.blob("f1");
  result.output.assign(out->data(), out->data() + out->count());
  caffepp::Blob* in = net.blob("data");
  result.input_grad.assign(in->diff(), in->diff() + in->count());
  return result;
}

TEST(PolicyEquivalenceTest, AllPoliciesProduceTheSameNumerics) {
  // The whole point of μ-cuDNN: hardware efficiency changes, semantics do
  // not. Undivided vs powerOfTwo vs all, tight vs loose workspace — outputs
  // and gradients must agree to float tolerance.
  core::UcudnnHandle baseline(cpu(),
                              wr(std::size_t{256} << 20,
                                 core::BatchSizePolicy::kUndivided));
  const NetResult expected = run_small_net(baseline);

  struct Case {
    std::size_t limit;
    core::BatchSizePolicy policy;
  };
  for (const Case c : {Case{0, core::BatchSizePolicy::kPowerOfTwo},
                       Case{64 << 10, core::BatchSizePolicy::kPowerOfTwo},
                       Case{1 << 20, core::BatchSizePolicy::kAll},
                       Case{8 << 20, core::BatchSizePolicy::kAll}}) {
    core::UcudnnHandle handle(cpu(), wr(c.limit, c.policy));
    const NetResult got = run_small_net(handle);
    EXPECT_LT(max_rel_diff(got.output.data(), expected.output.data(),
                           static_cast<std::int64_t>(expected.output.size())),
              1e-3)
        << "limit " << c.limit;
    EXPECT_LT(max_rel_diff(got.input_grad.data(), expected.input_grad.data(),
                           static_cast<std::int64_t>(expected.input_grad.size())),
              2e-3)
        << "limit " << c.limit;
  }
}

TEST(PolicyEquivalenceTest, WdMatchesWrNumerics) {
  core::UcudnnHandle baseline(cpu(), wr(std::size_t{256} << 20,
                                        core::BatchSizePolicy::kUndivided));
  const NetResult expected = run_small_net(baseline);

  core::Options wd;
  wd.workspace_policy = core::WorkspacePolicy::kWD;
  wd.total_workspace_size = std::size_t{3} << 20;
  wd.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  core::UcudnnHandle handle(cpu(), wd);
  const NetResult got = run_small_net(handle);
  EXPECT_LT(max_rel_diff(got.output.data(), expected.output.data(),
                         static_cast<std::int64_t>(expected.output.size())),
            1e-3);
  EXPECT_LT(max_rel_diff(got.input_grad.data(), expected.input_grad.data(),
                         static_cast<std::int64_t>(expected.input_grad.size())),
            2e-3);
}

TEST(CrossFrameworkTest, CaffeppAndTfminiAgreeOnAConvolution) {
  // One conv layer, identical weights and inputs, both frameworks, both
  // through μ-cuDNN: outputs must match.
  const TensorShape in_shape{3, 4, 10, 10};
  Tensor x(in_shape), w(TensorShape{6, 4, 3, 3});
  fill_random(x, 7);
  fill_random(w, 8);

  // caffepp (bias disabled so both compute pure convolutions).
  std::vector<float> y_caffe;
  {
    core::UcudnnHandle handle(cpu(), wr(1 << 20));
    caffepp::Net net(handle, "x", caffepp::NetOptions{1 << 20, true});
    net.input("data", in_shape);
    net.conv("c", "data", 6, 3, 1, 1, /*bias=*/false);
    net.init(1);
    // Overwrite the random init with our fixed weights and input.
    std::copy(x.data(), x.data() + x.count(), net.blob("data")->data());
    auto* layer = dynamic_cast<caffepp::ConvLayer*>(net.layers()[0].get());
    ASSERT_NE(layer, nullptr);
    std::copy(w.data(), w.data() + w.count(), layer->params()[0]->data());
    net.forward();
    caffepp::Blob* out = net.blob("c");
    y_caffe.assign(out->data(), out->data() + out->count());
  }

  // tfmini.
  std::vector<float> y_tf;
  {
    tfmini::Graph graph;
    const int input = graph.placeholder("x", in_shape);
    const int weights = graph.variable("w", {6, 4, 3, 3});
    const int conv = graph.conv2d("c", input, weights, 1, tfmini::Padding::kSame);
    core::UcudnnHandle handle(cpu(), wr(1 << 20));
    tfmini::Session session(graph, handle);
    session.initialize(1);
    std::copy(x.data(), x.data() + x.count(), session.data(input));
    std::copy(w.data(), w.data() + w.count(), session.data(weights));
    session.run_forward();
    const std::int64_t count = graph.op(conv).shape.count();
    y_tf.assign(session.data(conv), session.data(conv) + count);
  }

  ASSERT_EQ(y_caffe.size(), y_tf.size());
  EXPECT_LT(max_rel_diff(y_caffe.data(), y_tf.data(),
                         static_cast<std::int64_t>(y_caffe.size())),
            1e-4);
}

TEST(CachePersistenceTest, SecondHandleReusesTheDatabase) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ucudnn_itest_cache.db")
          .string();
  std::remove(path.c_str());

  const kernels::ConvProblem problem({16, 8, 12, 12}, {8, 8, 3, 3},
                                     {.pad_h = 1, .pad_w = 1});
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());

  core::Configuration first_config;
  {
    core::Options opts = wr(std::size_t{32} << 20);
    opts.cache_path = path;
    core::UcudnnHandle handle(dev, opts);
    handle.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr,
                       nullptr, 0.0f, nullptr);
    first_config =
        *handle.configuration_for(ConvKernelType::kForward, problem);
    EXPECT_GT(handle.cache()->size(), 0u);
  }  // destructor persists the DB

  {
    core::Options opts = wr(std::size_t{32} << 20);
    opts.cache_path = path;
    core::UcudnnHandle handle(dev, opts);
    EXPECT_GT(handle.cache()->size(), 0u);  // loaded from disk
    handle.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr,
                       nullptr, 0.0f, nullptr);
    const core::Configuration* config =
        handle.configuration_for(ConvKernelType::kForward, problem);
    ASSERT_NE(config, nullptr);
    EXPECT_EQ(config->micro.size(), first_config.micro.size());
    EXPECT_DOUBLE_EQ(config->time_ms, first_config.time_ms);
    // All benchmark lookups were cache hits: nothing new got measured.
    EXPECT_LT(handle.total_benchmark_ms(), 50.0);
  }
  std::remove(path.c_str());
}

TEST(MultiDeviceBenchmarkTest, NodeHandleMatchesSingleDeviceDecisions) {
  const kernels::ConvProblem problem({32, 16, 14, 14}, {16, 16, 3, 3},
                                     {.pad_h = 1, .pad_w = 1});
  core::Options opts = wr(std::size_t{16} << 20, core::BatchSizePolicy::kAll);

  core::UcudnnHandle single(
      std::make_shared<device::Device>(device::p100_sxm2_spec()), opts);
  single.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr, nullptr,
                     0.0f, nullptr);

  opts.benchmark_devices = 4;
  device::Node node(device::p100_sxm2_spec(), 4);
  core::UcudnnHandle multi(node, opts);
  multi.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr, nullptr,
                    0.0f, nullptr);

  const auto* a = single.configuration_for(ConvKernelType::kForward, problem);
  const auto* b = multi.configuration_for(ConvKernelType::kForward, problem);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(a->time_ms, b->time_ms);
  EXPECT_EQ(a->workspace, b->workspace);
}

TEST(FailureInjectionTest, DeviceOomDegradesToSmallerWorkspace) {
  device::DeviceSpec tiny = device::p100_sxm2_spec();
  tiny.memory_bytes = 4 << 20;  // 4 MiB device
  auto dev = std::make_shared<device::Device>(tiny);
  core::UcudnnHandle handle(dev, wr(std::size_t{512} << 20,
                                    core::BatchSizePolicy::kPowerOfTwo));
  // conv2-scale kernel wants far more workspace than the device has; the
  // handle halves the limit until a configuration fits instead of aborting.
  const kernels::ConvProblem problem({64, 96, 27, 27}, {256, 96, 5, 5},
                                     {.pad_h = 2, .pad_w = 2});
  handle.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr, nullptr,
                     0.0f, nullptr);
  EXPECT_GT(handle.degradation_stats().degraded_allocations, 0u);
  const core::Configuration* config =
      handle.configuration_for(ConvKernelType::kForward, problem);
  ASSERT_NE(config, nullptr);
  EXPECT_LE(config->workspace, std::size_t{4} << 20);
}

TEST(FailureInjectionTest, DeviceOomFailFastSurfacesAllocFailed) {
  device::DeviceSpec tiny = device::p100_sxm2_spec();
  tiny.memory_bytes = 4 << 20;
  auto dev = std::make_shared<device::Device>(tiny);
  core::Options opts =
      wr(std::size_t{512} << 20, core::BatchSizePolicy::kPowerOfTwo);
  opts.fail_fast = true;
  core::UcudnnHandle handle(dev, opts);
  const kernels::ConvProblem problem({64, 96, 27, 27}, {256, 96, 5, 5},
                                     {.pad_h = 2, .pad_w = 2});
  try {
    handle.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr,
                       nullptr, 0.0f, nullptr);
    FAIL() << "expected allocation failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kAllocFailed);
  }
  EXPECT_EQ(handle.degradation_stats().degraded_allocations, 0u);
}

TEST(FailureInjectionTest, WdArenaDegradesToDeviceCapacity) {
  device::DeviceSpec tiny = device::p100_sxm2_spec();
  tiny.memory_bytes = 8 << 20;
  auto dev = std::make_shared<device::Device>(tiny);
  core::Options opts;
  opts.workspace_policy = core::WorkspacePolicy::kWD;
  opts.total_workspace_size = std::size_t{64} << 20;  // > device memory
  core::UcudnnHandle handle(dev, opts);
  // conv2-scale kernel: its best configuration inside a 64 MiB arena needs
  // well over the 8 MiB this device has. The planner re-solves with halved
  // arena limits until the allocation fits.
  const kernels::ConvProblem problem({64, 96, 27, 27}, {256, 96, 5, 5},
                                     {.pad_h = 2, .pad_w = 2});
  handle.get_algorithm(ConvKernelType::kForward, problem,
                       mcudnn::AlgoPreference::kPreferFastest, 0);
  handle.convolution(ConvKernelType::kForward, problem, 1.0f, nullptr, nullptr,
                     0.0f, nullptr);
  EXPECT_GT(handle.degradation_stats().degraded_allocations, 0u);
  ASSERT_NE(handle.wd_plan(), nullptr);
  EXPECT_LE(handle.wd_plan()->total_workspace, std::size_t{8} << 20);
}

TEST(FailureInjectionTest, WdArenaFailFastSurfacesAllocFailed) {
  device::DeviceSpec tiny = device::p100_sxm2_spec();
  tiny.memory_bytes = 8 << 20;
  auto dev = std::make_shared<device::Device>(tiny);
  core::Options opts;
  opts.workspace_policy = core::WorkspacePolicy::kWD;
  opts.total_workspace_size = std::size_t{64} << 20;
  opts.fail_fast = true;
  core::UcudnnHandle handle(dev, opts);
  const kernels::ConvProblem problem({64, 96, 27, 27}, {256, 96, 5, 5},
                                     {.pad_h = 2, .pad_w = 2});
  handle.get_algorithm(ConvKernelType::kForward, problem,
                       mcudnn::AlgoPreference::kPreferFastest, 0);
  EXPECT_THROW(handle.convolution(ConvKernelType::kForward, problem, 1.0f,
                                  nullptr, nullptr, 0.0f, nullptr),
               Error);
}

TEST(FailureInjectionTest, FinalizeWdRequiresWdPolicy) {
  core::UcudnnHandle handle(cpu(), wr(1 << 20));
  EXPECT_THROW(handle.finalize_wd(), Error);
}

TEST(SharedWorkspaceTest, SequentialSharingIsNumericallySound) {
  core::Options opts = wr(std::size_t{2} << 20);
  opts.share_wr_workspace = true;
  core::UcudnnHandle shared(cpu(), opts);
  const NetResult got = run_small_net(shared);

  core::UcudnnHandle baseline(cpu(), wr(std::size_t{2} << 20));
  const NetResult expected = run_small_net(baseline);
  EXPECT_LT(max_rel_diff(got.output.data(), expected.output.data(),
                         static_cast<std::int64_t>(expected.output.size())),
            1e-5);
  // And it really did allocate less: one shared buffer only.
  const auto usage = shared.device().usage_by_tag();
  EXPECT_TRUE(usage.count("shared:ws"));
}

TEST(AlexNetIntegrationTest, NumericSingleIterationOnCpu) {
  // An AlexNet-shaped stack (same layer types and strides, spatially scaled
  // down 4x so the numeric CPU run stays fast) forward+backward through
  // μ-cuDNN end to end — the full stack in numeric mode.
  core::UcudnnHandle handle(cpu(), wr(std::size_t{8} << 20));
  caffepp::Net net(handle, "alexnet",
                   caffepp::NetOptions{std::size_t{8} << 20, true});
  {
    std::string top = net.input("data", {2, 3, 59, 59});
    top = net.conv("conv1", top, 24, 11, 4, 0);   // -> 13x13
    top = net.relu("relu1", top);
    top = net.lrn("norm1", top);
    top = net.pool_max("pool1", top, 3, 2);       // -> 6x6
    top = net.conv("conv2", top, 64, 5, 1, 2);
    top = net.relu("relu2", top);
    top = net.pool_max("pool2", top, 3, 2);       // -> 2x2
    top = net.conv("conv3", top, 96, 3, 1, 1);
    top = net.relu("relu3", top);
    top = net.fc("fc6", top, 256);
    top = net.relu("relu6", top);
    top = net.dropout("drop6", top);
    top = net.fc("fc8", top, 50);
    net.softmax_loss("loss", top);
  }
  net.init(5);
  net.forward();
  const float loss = net.blob("loss")->data()[0];
  EXPECT_TRUE(std::isfinite(loss));
  net.backward();
  caffepp::Blob* fc8 = net.blob("fc8");
  double norm = 0.0;
  for (std::int64_t i = 0; i < fc8->count(); ++i) {
    ASSERT_TRUE(std::isfinite(fc8->diff()[i]));
    norm += std::abs(fc8->diff()[i]);
  }
  EXPECT_GT(norm, 0.0);
}

}  // namespace
}  // namespace ucudnn
