// Tests for the tfmini framework: graph construction and shape inference,
// SAME/VALID padding, session execution on the host CPU (including a
// finite-difference gradient check through the tape), virtual-mode timing,
// and the TF-style "no pre-announced workspace limit" μ-cuDNN integration.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "frameworks/tfmini/models.h"
#include "frameworks/tfmini/tfmini.h"

namespace ucudnn::tfmini {
namespace {

std::shared_ptr<device::Device> cpu() {
  return std::make_shared<device::Device>(device::host_cpu_spec());
}

std::shared_ptr<device::Device> p100() {
  return std::make_shared<device::Device>(device::p100_sxm2_spec());
}

core::Options wr_options(std::size_t limit = std::size_t{1} << 20) {
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = limit;
  return opts;
}

TEST(GraphTest, SamePaddingMatchesTf) {
  // 224 / stride 2 with 7x7 kernel -> 112 (TF SAME).
  EXPECT_EQ(Graph::same_pad(224, 7, 2), 3);
  // 28 / stride 1 with 3x3 -> pad 1.
  EXPECT_EQ(Graph::same_pad(28, 3, 1), 1);
  // 1x1 kernels need no padding.
  EXPECT_EQ(Graph::same_pad(56, 1, 1), 0);
}

TEST(GraphTest, ShapeInference) {
  Graph g;
  const int x = g.placeholder("x", {2, 3, 32, 32});
  const int w = g.variable("w", {8, 3, 3, 3});
  const int c = g.conv2d("c", x, w, 2, Padding::kSame);
  EXPECT_EQ(g.op(c).shape, (TensorShape{2, 8, 16, 16}));
  const int p = g.max_pool("p", c, 2, 2, Padding::kValid);
  EXPECT_EQ(g.op(p).shape, (TensorShape{2, 8, 8, 8}));
  const int fcw = g.variable("fcw", {10, 8 * 8 * 8, 1, 1});
  const int m = g.matmul("m", p, fcw);
  EXPECT_EQ(g.op(m).shape, (TensorShape{2, 10, 1, 1}));
  const int loss = g.softmax_xent("loss", m);
  EXPECT_EQ(g.op(loss).shape, (TensorShape{1, 1, 1, 1}));
}

TEST(GraphTest, RejectsMalformedGraphs) {
  Graph g;
  const int x = g.placeholder("x", {1, 3, 8, 8});
  EXPECT_THROW(g.placeholder("x", {1, 3, 8, 8}), Error);  // duplicate
  EXPECT_THROW(g.conv2d("c", x, x, 1, Padding::kSame), Error);  // not a var
  const int y = g.placeholder("y", {1, 4, 8, 8});
  EXPECT_THROW(g.add("a", x, y), Error);  // shape mismatch
  EXPECT_THROW(g.find("nope"), Error);
}

TEST(GraphTest, ConcatChannels) {
  Graph g;
  const int a = g.placeholder("a", {2, 3, 8, 8});
  const int b = g.placeholder("b", {2, 5, 8, 8});
  const int c = g.concat("c", {a, b});
  EXPECT_EQ(g.op(c).shape, (TensorShape{2, 8, 8, 8}));
}

TEST(SessionTest, ForwardBackwardNumeric) {
  Graph g;
  const int x = g.placeholder("x", {2, 3, 16, 16});
  const int w1 = g.variable("w1", {4, 3, 3, 3});
  int top = g.conv2d("c1", x, w1, 1, Padding::kSame);
  top = g.batch_norm("bn1", top);
  top = g.relu("r1", top);
  top = g.max_pool("p1", top, 2, 2, Padding::kValid);
  const int w2 = g.variable("w2", {10, 4 * 8 * 8, 1, 1});
  top = g.matmul("fc", top, w2);
  const int loss = g.softmax_xent("loss", top);

  core::UcudnnHandle handle(cpu(), wr_options());
  Session session(g, handle);
  session.initialize(3);
  session.run_forward();
  EXPECT_TRUE(std::isfinite(session.data(loss)[0]));
  EXPECT_GT(session.data(loss)[0], 0.0f);
  session.run_backward();
  // Gradients flow to the input and to every variable.
  for (int op : {x, w1, w2}) {
    double norm = 0.0;
    const auto& shape = g.op(op).shape;
    for (std::int64_t i = 0; i < shape.count(); ++i) {
      EXPECT_TRUE(std::isfinite(session.grad(op)[i]));
      norm += std::abs(session.grad(op)[i]);
    }
    EXPECT_GT(norm, 0.0) << g.op(op).name;
  }
}

TEST(SessionTest, TapeGradientMatchesFiniteDifference) {
  Graph g;
  const int x = g.placeholder("x", {2, 2, 8, 8});
  const int w = g.variable("w", {3, 2, 3, 3});
  int top = g.conv2d("c", x, w, 1, Padding::kSame);
  top = g.relu("r", top);
  const int fcw = g.variable("fcw", {4, 3 * 8 * 8, 1, 1});
  top = g.matmul("fc", top, fcw);
  const int loss = g.softmax_xent("loss", top);

  core::UcudnnHandle handle(cpu(), wr_options());
  Session session(g, handle);
  session.initialize(11);
  session.run_forward();
  session.run_backward();

  std::vector<float> analytic(
      static_cast<std::size_t>(g.op(x).shape.count()));
  std::copy(session.grad(x), session.grad(x) + analytic.size(),
            analytic.begin());

  const float eps = 2e-3f;
  const std::int64_t stride = g.op(x).shape.count() / 16;
  double worst = 0.0, scale = 1e-8;
  for (std::int64_t i = 0; i < g.op(x).shape.count(); i += stride) {
    const float saved = session.data(x)[i];
    session.data(x)[i] = saved + eps;
    session.run_forward();
    const double plus = session.data(loss)[0];
    session.data(x)[i] = saved - eps;
    session.run_forward();
    const double minus = session.data(loss)[0];
    session.data(x)[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    worst = std::max(worst, std::abs(numeric - analytic[static_cast<std::size_t>(i)]));
    scale = std::max({scale, std::abs(numeric),
                      static_cast<double>(
                          std::abs(analytic[static_cast<std::size_t>(i)]))});
  }
  EXPECT_LT(worst / scale, 0.1);
}

TEST(SessionTest, NoWorkspaceLimitAnnouncedBeforeFirstRun) {
  // tfmini never calls get_algorithm during graph construction — μ-cuDNN
  // must see zero recorded kernels until the session actually runs
  // (§IV-B2: the limit then comes from Options::workspace_limit).
  Graph g;
  build_alexnet(g, 32);
  core::UcudnnHandle handle(p100(), wr_options(std::size_t{64} << 20));
  Session session(g, handle);
  EXPECT_TRUE(handle.recorded_kernels().empty());
  session.run_forward();
  EXPECT_FALSE(handle.recorded_kernels().empty());
  // The configurations honor the env/options-provided limit.
  for (const auto& request : handle.recorded_kernels()) {
    const auto* config =
        handle.configuration_for(request.type, request.problem);
    if (config != nullptr) {
      EXPECT_LE(config->workspace, std::size_t{64} << 20);
    }
  }
}

TEST(ModelsTest, AlexNetShapes) {
  Graph g;
  build_alexnet(g, 16);
  EXPECT_EQ(g.op(g.find("conv1")).shape, (TensorShape{16, 96, 55, 55}));
  EXPECT_EQ(g.op(g.find("conv2")).shape, (TensorShape{16, 256, 27, 27}));
  EXPECT_EQ(g.op(g.find("pool5")).shape, (TensorShape{16, 256, 6, 6}));
  EXPECT_EQ(g.op(g.find("fc8")).shape, (TensorShape{16, 1000, 1, 1}));
}

TEST(ModelsTest, ResNet50Shapes) {
  Graph g;
  build_resnet50(g, 4);
  EXPECT_EQ(g.op(g.find("pool1")).shape, (TensorShape{4, 64, 56, 56}));
  EXPECT_EQ(g.op(g.find("res5_3/out")).shape, (TensorShape{4, 2048, 7, 7}));
  EXPECT_EQ(g.op(g.find("pool5")).shape, (TensorShape{4, 2048, 1, 1}));
}

TEST(ModelsTest, DenseNet40Shapes) {
  Graph g;
  build_densenet40(g, 8, 40);
  EXPECT_EQ(g.op(g.find("dense1_12/concat")).shape,
            (TensorShape{8, 560, 32, 32}));
  EXPECT_EQ(g.op(g.find("global_pool")).shape.h, 1);
}

TEST(ModelsTest, VirtualTimingImprovesWithWorkspace) {
  double times[2] = {0, 0};
  int idx = 0;
  for (const std::size_t limit : {std::size_t{8} << 20, std::size_t{512} << 20}) {
    Graph g;
    build_alexnet(g, 64);
    auto dev = p100();
    core::UcudnnHandle handle(dev, wr_options(limit));
    Session session(g, handle);
    session.time(1);
    times[idx++] = session.last_iteration_ms();
  }
  EXPECT_LT(times[1], times[0]);
}

}  // namespace
}  // namespace ucudnn::tfmini
