// Unit tests for src/tensor: shapes, descriptors, convolution geometry,
// owning tensors and fill/compare utilities.
#include <gtest/gtest.h>

#include "common/status.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

TEST(TensorShapeTest, CountAndBytes) {
  const TensorShape s{2, 3, 4, 5};
  EXPECT_EQ(s.count(), 120);
  EXPECT_EQ(s.bytes(), 480u);
  EXPECT_EQ(s.with_batch(7).count(), 7 * 60);
  EXPECT_EQ(s.to_string(), "(2, 3, 4, 5)");
}

TEST(TensorShapeTest, Equality) {
  const TensorShape a{1, 2, 3, 4};
  EXPECT_EQ(a, (TensorShape{1, 2, 3, 4}));
  EXPECT_NE(a, (TensorShape{2, 2, 3, 4}));
}

TEST(TensorDescTest, NchwOffsets) {
  const TensorDesc d{{2, 3, 4, 5}};
  EXPECT_EQ(d.offset(0, 0, 0, 0), 0);
  EXPECT_EQ(d.offset(0, 0, 0, 1), 1);
  EXPECT_EQ(d.offset(0, 0, 1, 0), 5);
  EXPECT_EQ(d.offset(0, 1, 0, 0), 20);
  EXPECT_EQ(d.offset(1, 0, 0, 0), 60);
  EXPECT_EQ(d.offset(1, 2, 3, 4), 119);
}

TEST(FilterDescTest, CountAndOffsets) {
  const FilterDesc f{8, 3, 3, 3};
  EXPECT_EQ(f.count(), 216);
  EXPECT_EQ(f.bytes(), 864u);
  EXPECT_EQ(f.offset(0, 0, 0, 0), 0);
  EXPECT_EQ(f.offset(1, 0, 0, 0), 27);
  EXPECT_EQ(f.offset(7, 2, 2, 2), 215);
}

TEST(ConvGeometryTest, OutputShapeBasic) {
  // AlexNet conv2: 96x27x27 in, 5x5 pad 2 stride 1 -> 256x27x27 out.
  const ConvGeometry g{.pad_h = 2, .pad_w = 2};
  const TensorShape x{256, 96, 27, 27};
  const FilterDesc f{256, 96, 5, 5};
  EXPECT_EQ(g.output_shape(x, f), (TensorShape{256, 256, 27, 27}));
}

TEST(ConvGeometryTest, OutputShapeStrided) {
  // AlexNet conv1: 3x224x224 in, 11x11 stride 4 pad 0? (single-column uses
  // pad 0 with 227 input); here: 227 -> (227 - 11)/4 + 1 = 55.
  const ConvGeometry g{.stride_h = 4, .stride_w = 4};
  const TensorShape x{1, 3, 227, 227};
  const FilterDesc f{96, 3, 11, 11};
  EXPECT_EQ(g.output_shape(x, f), (TensorShape{1, 96, 55, 55}));
}

TEST(ConvGeometryTest, OutputShapeDilated) {
  const ConvGeometry g{.pad_h = 2, .pad_w = 2, .dilation_h = 2, .dilation_w = 2};
  const TensorShape x{1, 4, 16, 16};
  const FilterDesc f{8, 4, 3, 3};
  // Effective kernel 5x5 pad 2 -> same spatial size.
  EXPECT_EQ(g.output_shape(x, f), (TensorShape{1, 8, 16, 16}));
}

TEST(ConvGeometryTest, RejectsChannelMismatch) {
  const ConvGeometry g;
  EXPECT_THROW(g.output_shape({1, 3, 8, 8}, {4, 5, 3, 3}), Error);
}

TEST(ConvGeometryTest, RejectsDegenerateOutput) {
  const ConvGeometry g;
  EXPECT_THROW(g.output_shape({1, 1, 2, 2}, {1, 1, 3, 3}), Error);
}

TEST(ConvGeometryTest, RejectsBadStrideAndPad) {
  ConvGeometry g;
  g.stride_h = 0;
  EXPECT_THROW(g.output_shape({1, 1, 8, 8}, {1, 1, 3, 3}), Error);
  g = ConvGeometry{};
  g.pad_w = -1;
  EXPECT_THROW(g.output_shape({1, 1, 8, 8}, {1, 1, 3, 3}), Error);
}

TEST(TensorTest, ZeroInitializedByDefault) {
  Tensor t(TensorShape{1, 2, 3, 3});
  for (std::int64_t i = 0; i < t.count(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, AtAccessorsMatchLinearLayout) {
  Tensor t(TensorShape{2, 2, 2, 2});
  t.at(1, 1, 1, 1) = 5.0f;
  t.at(0, 1, 0, 1) = 3.0f;
  EXPECT_EQ(t.data()[15], 5.0f);
  EXPECT_EQ(t.data()[5], 3.0f);
}

TEST(TensorTest, FillRandomIsDeterministic) {
  Tensor a(TensorShape{1, 3, 8, 8});
  Tensor b(TensorShape{1, 3, 8, 8});
  fill_random(a, 42);
  fill_random(b, 42);
  EXPECT_EQ(max_abs_diff(a.data(), b.data(), a.count()), 0.0);
  fill_random(b, 43);
  EXPECT_GT(max_abs_diff(a.data(), b.data(), a.count()), 0.0);
}

TEST(TensorTest, FillRandomInRange) {
  Tensor a(TensorShape{1, 1, 32, 32});
  fill_random(a, 1);
  for (std::int64_t i = 0; i < a.count(); ++i) {
    EXPECT_GE(a.data()[i], -1.0f);
    EXPECT_LT(a.data()[i], 1.0f);
  }
}

TEST(TensorTest, CompareUtilities) {
  float a[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  float b[4] = {1.0f, 2.5f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b, 4), 0.5);
  EXPECT_DOUBLE_EQ(max_rel_diff(a, b, 4), 0.5 / 4.0);
  fill_constant(a, 4, 0.0f);
  EXPECT_EQ(a[3], 0.0f);
}

}  // namespace
}  // namespace ucudnn
