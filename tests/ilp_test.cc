// Tests for the LP/ILP substrate: simplex against textbook LPs, the 0-1
// branch-and-bound against brute force, the MCKP DP against both, and
// property sweeps on random instances.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "common/status.h"
#include "ilp/ilp.h"

namespace ucudnn::ilp {
namespace {

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
  LinearProgram lp;
  lp.objective = {-3.0, -5.0};  // minimize the negation
  lp.constraints = {
      {{1.0, 0.0}, Relation::kLessEqual, 4.0},
      {{0.0, 2.0}, Relation::kLessEqual, 12.0},
      {{3.0, 2.0}, Relation::kLessEqual, 18.0},
  };
  const LpResult r = solve_lp(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.unbounded);
  EXPECT_NEAR(r.objective, -36.0, 1e-6);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
  EXPECT_NEAR(r.x[1], 6.0, 1e-6);
}

TEST(SimplexTest, EqualityAndGreaterEqual) {
  // min x + 2y s.t. x + y = 10, x >= 3 -> x=10? No: y >= 0, minimize picks
  // y=0, x=10 -> obj 10? Check x>=3 satisfied. Optimal: x=10, y=0, obj=10.
  LinearProgram lp;
  lp.objective = {1.0, 2.0};
  lp.constraints = {
      {{1.0, 1.0}, Relation::kEqual, 10.0},
      {{1.0, 0.0}, Relation::kGreaterEqual, 3.0},
  };
  const LpResult r = solve_lp(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 10.0, 1e-6);
  EXPECT_NEAR(r.x[0], 10.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  LinearProgram lp;
  lp.objective = {1.0};
  lp.constraints = {
      {{1.0}, Relation::kLessEqual, 1.0},
      {{1.0}, Relation::kGreaterEqual, 2.0},
  };
  const LpResult r = solve_lp(lp);
  EXPECT_FALSE(r.feasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x with only x >= 0 and a vacuous constraint.
  LinearProgram lp;
  lp.objective = {-1.0};
  lp.constraints = {{{-1.0}, Relation::kLessEqual, 5.0}};
  const LpResult r = solve_lp(lp);
  EXPECT_TRUE(r.unbounded);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // x - y <= -2 with min x + y -> y >= x + 2, best x=0, y=2.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.constraints = {{{1.0, -1.0}, Relation::kLessEqual, -2.0}};
  const LpResult r = solve_lp(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate LP; Bland's rule must terminate.
  LinearProgram lp;
  lp.objective = {-0.75, 150.0, -0.02, 6.0};
  lp.constraints = {
      {{0.25, -60.0, -0.04, 9.0}, Relation::kLessEqual, 0.0},
      {{0.5, -90.0, -0.02, 3.0}, Relation::kLessEqual, 0.0},
      {{0.0, 0.0, 1.0, 0.0}, Relation::kLessEqual, 1.0},
  };
  const LpResult r = solve_lp(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, -0.05, 1e-6);
}

// Brute force over all 0/1 assignments (reference for small ILPs).
double brute_force_ilp(const LinearProgram& lp, std::vector<int>* best_x) {
  const std::size_t n = lp.num_vars();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    bool ok = true;
    for (const auto& con : lp.constraints) {
      double lhs = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (std::uint64_t{1} << i)) lhs += con.coeffs[i];
      }
      if (con.relation == Relation::kLessEqual && lhs > con.rhs + 1e-9) ok = false;
      if (con.relation == Relation::kGreaterEqual && lhs < con.rhs - 1e-9) ok = false;
      if (con.relation == Relation::kEqual && std::abs(lhs - con.rhs) > 1e-9) ok = false;
      if (!ok) break;
    }
    if (!ok) continue;
    double obj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) obj += lp.objective[i];
    }
    if (obj < best) {
      best = obj;
      if (best_x) {
        best_x->assign(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
          (*best_x)[i] = (mask >> i) & 1;
        }
      }
    }
  }
  return best;
}

TEST(BranchBoundTest, SmallKnapsack) {
  // max value knapsack as min of negated values.
  // items (v, w): (60,10), (100,20), (120,30), capacity 50 -> 220.
  LinearProgram lp;
  lp.objective = {-60.0, -100.0, -120.0};
  lp.constraints = {{{10.0, 20.0, 30.0}, Relation::kLessEqual, 50.0}};
  const IlpResult r = solve_binary_ilp(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, -220.0, 1e-6);
  EXPECT_EQ(r.x, (std::vector<int>{0, 1, 1}));
}

TEST(BranchBoundTest, InfeasibleIlp) {
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.constraints = {
      {{1.0, 1.0}, Relation::kEqual, 1.0},
      {{1.0, 1.0}, Relation::kGreaterEqual, 2.0},
  };
  const IlpResult r = solve_binary_ilp(lp);
  EXPECT_FALSE(r.feasible);
}

TEST(BranchBoundTest, MatchesBruteForceOnRandomInstances) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> cost(0.1, 10.0);
  std::uniform_int_distribution<int> weight(1, 20);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(trial % 8);
    LinearProgram lp;
    for (std::size_t i = 0; i < n; ++i) lp.objective.push_back(-cost(rng));
    Constraint budget;
    for (std::size_t i = 0; i < n; ++i) {
      budget.coeffs.push_back(static_cast<double>(weight(rng)));
    }
    budget.relation = Relation::kLessEqual;
    budget.rhs = 30.0;
    lp.constraints.push_back(budget);

    const double expected = brute_force_ilp(lp, nullptr);
    const IlpResult r = solve_binary_ilp(lp);
    ASSERT_TRUE(r.feasible) << "trial " << trial;
    EXPECT_NEAR(r.objective, expected, 1e-6) << "trial " << trial;
  }
}

MckpProblem random_mckp(unsigned seed, std::size_t groups, std::size_t items,
                        std::int64_t capacity) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> cost(0.5, 20.0);
  std::uniform_int_distribution<std::int64_t> weight(0, 40);
  MckpProblem p;
  p.capacity = capacity;
  p.groups.resize(groups);
  for (auto& group : p.groups) {
    for (std::size_t i = 0; i < items; ++i) {
      group.push_back(MckpItem{cost(rng), weight(rng)});
    }
  }
  return p;
}

TEST(MckpTest, HandPickedInstance) {
  // Two groups; the cheap-cost items together exceed capacity, forcing a
  // tradeoff.
  MckpProblem p;
  p.capacity = 10;
  p.groups = {
      {{1.0, 8}, {5.0, 2}},   // group 0: fast-but-heavy vs slow-but-light
      {{2.0, 8}, {4.0, 1}},   // group 1
  };
  const MckpResult r = solve_mckp(p);
  ASSERT_TRUE(r.feasible);
  // Options: (1+4, 9), (5+2, 10), (5+4, 3), (1+2, 16 infeasible).
  EXPECT_NEAR(r.cost, 5.0, 1e-9);
  EXPECT_EQ(r.selection, (std::vector<int>{0, 1}));
}

TEST(MckpTest, InfeasibleWhenEverythingTooHeavy) {
  MckpProblem p;
  p.capacity = 3;
  p.groups = {{{1.0, 5}, {2.0, 4}}};
  const MckpResult r = solve_mckp(p);
  EXPECT_FALSE(r.feasible);
}

TEST(MckpTest, ZeroCapacityNeedsZeroWeightItems) {
  MckpProblem p;
  p.capacity = 0;
  p.groups = {{{3.0, 0}, {1.0, 5}}, {{2.0, 0}}};
  const MckpResult r = solve_mckp(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 5.0, 1e-9);
  EXPECT_EQ(r.selection, (std::vector<int>{0, 0}));
}

TEST(MckpTest, MatchesBranchAndBoundOnRandomInstances) {
  for (unsigned seed = 0; seed < 12; ++seed) {
    const MckpProblem p = random_mckp(seed, 4, 3, 60);
    const MckpResult dp = solve_mckp(p);
    const IlpResult bb = solve_binary_ilp(mckp_to_ilp(p));
    ASSERT_EQ(dp.feasible, bb.feasible) << "seed " << seed;
    if (dp.feasible) {
      EXPECT_NEAR(dp.cost, bb.objective, 1e-6) << "seed " << seed;
    }
  }
}

TEST(MckpTest, SelectionIsConsistentWithCostAndCapacity) {
  for (unsigned seed = 100; seed < 110; ++seed) {
    const MckpProblem p = random_mckp(seed, 6, 5, 100);
    const MckpResult r = solve_mckp(p);
    if (!r.feasible) continue;
    double cost = 0;
    std::int64_t weight = 0;
    for (std::size_t g = 0; g < p.groups.size(); ++g) {
      ASSERT_GE(r.selection[g], 0);
      const auto& item =
          p.groups[g][static_cast<std::size_t>(r.selection[g])];
      cost += item.cost;
      weight += item.weight;
    }
    EXPECT_NEAR(cost, r.cost, 1e-9);
    EXPECT_LE(weight, p.capacity);
  }
}

TEST(MckpTest, BucketedWeightsStayFeasible) {
  // Force coarse bucketing; the DP must still return a capacity-respecting
  // selection (possibly slightly suboptimal).
  const MckpProblem p = random_mckp(42, 8, 4, 1'000'000);
  const MckpResult coarse = solve_mckp(p, /*buckets=*/64);
  const MckpResult fine = solve_mckp(p, /*buckets=*/1 << 20);
  ASSERT_TRUE(coarse.feasible);
  ASSERT_TRUE(fine.feasible);
  std::int64_t weight = 0;
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    weight += p.groups[g][static_cast<std::size_t>(coarse.selection[g])].weight;
  }
  EXPECT_LE(weight, p.capacity);
  EXPECT_GE(coarse.cost + 1e-9, fine.cost);  // coarse can't beat fine
}

TEST(MckpTest, LargerCapacityNeverHurts) {
  const MckpProblem base = random_mckp(3, 5, 4, 50);
  MckpProblem wide = base;
  wide.capacity = 200;
  const MckpResult narrow = solve_mckp(base);
  const MckpResult broad = solve_mckp(wide);
  ASSERT_TRUE(broad.feasible);
  if (narrow.feasible) {
    EXPECT_LE(broad.cost, narrow.cost + 1e-9);
  }
}

TEST(MckpTest, RejectsMalformedInput) {
  MckpProblem p;
  p.capacity = -1;
  p.groups = {{{1.0, 1}}};
  EXPECT_THROW(solve_mckp(p), Error);
  p.capacity = 10;
  p.groups = {{}};
  EXPECT_THROW(solve_mckp(p), Error);
  p.groups = {{{1.0, -5}}};
  EXPECT_THROW(solve_mckp(p), Error);
}

TEST(MckpToIlpTest, StructureIsCorrect) {
  MckpProblem p;
  p.capacity = 7;
  p.groups = {{{1.0, 2}, {2.0, 3}}, {{3.0, 4}}};
  const LinearProgram lp = mckp_to_ilp(p);
  EXPECT_EQ(lp.num_vars(), 3u);
  ASSERT_EQ(lp.constraints.size(), 3u);  // budget + 2 exactly-one rows
  EXPECT_EQ(lp.constraints[0].relation, Relation::kLessEqual);
  EXPECT_EQ(lp.constraints[0].rhs, 7.0);
  EXPECT_EQ(lp.constraints[1].relation, Relation::kEqual);
  EXPECT_EQ(lp.constraints[1].rhs, 1.0);
}

}  // namespace
}  // namespace ucudnn::ilp
