// Regression tests for the nested-parallelism defect: a parallel_for issued
// from inside a pool worker used to collapse to a single inline chunk, so
// batched GEMM under an outer parallel_for_each ran fully serialized per
// image. These tests pin the work-sharing behavior — nested chunks are
// claimed by idle workers — on a multi-worker global pool.
//
// This binary has a custom main: the global pool is forced to 4 workers via
// UCUDNN_NUM_THREADS before it is first touched, so the tests are
// deterministic on single-core CI machines too.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "gemm/gemm.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

// Records the calling thread and blocks (bounded) until a second distinct
// thread has checked in. A regression that serializes the loop onto one
// thread makes check_in() time out and distinct() stay at 1 — the test then
// fails instead of hanging.
class ThreadRendezvous {
 public:
  void check_in() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    MutexLock lock(mutex_);
    tids_.insert(std::this_thread::get_id());
    cv_.notify_all();
    while (tids_.size() < 2 && std::chrono::steady_clock::now() < deadline) {
      cv_.wait_for_us(mutex_, 10 * 1000);
    }
  }

  std::size_t distinct() {
    MutexLock lock(mutex_);
    return tids_.size();
  }

 private:
  Mutex mutex_{"test.rendezvous"};
  CondVar cv_;
  std::set<std::thread::id> tids_ GUARDED_BY(mutex_);
};

TEST(NestedParallelTest, NestedParallelForSharesChunksWithIdleWorkers) {
  ThreadPool& pool = ThreadPool::global();
  ASSERT_GE(pool.num_threads(), 2u);

  // Run the nested caller on a pool worker (not the main thread) so the
  // inner parallel_for really is the nested-from-a-worker case.
  ThreadRendezvous inner_tids;
  Mutex done_mutex{"test.done"};
  CondVar done_cv;
  bool done = false;
  pool.submit([&] {
    pool.parallel_for(
        64,
        [&](std::int64_t, std::int64_t, std::size_t) { inner_tids.check_in(); },
        /*min_chunk=*/1);
    MutexLock lock(done_mutex);
    done = true;
    done_cv.notify_one();
  });
  {
    MutexLock lock(done_mutex);
    while (!done) done_cv.wait(done_mutex);
  }
  // The old implementation ran the whole nested range inline on the one
  // worker; work sharing must spread chunks across >= 2 threads.
  EXPECT_GE(inner_tids.distinct(), 2u);
}

TEST(NestedParallelTest, BatchedGemmUnderParallelForEachUsesMultipleWorkers) {
  ASSERT_GE(ThreadPool::global().num_threads(), 2u);

  // One small GEMM per "image", dispatched exactly like im2col_batched /
  // gemm_conv dispatch their per-image work.
  constexpr std::int64_t kImages = 8;
  constexpr std::int64_t kM = 24, kN = 24, kK = 24;
  std::vector<float> a(static_cast<std::size_t>(kImages * kM * kK));
  std::vector<float> b(static_cast<std::size_t>(kImages * kK * kN));
  fill_random(a.data(), static_cast<std::int64_t>(a.size()), 11);
  fill_random(b.data(), static_cast<std::int64_t>(b.size()), 12);
  std::vector<float> c(static_cast<std::size_t>(kImages * kM * kN), 0.0f);

  ThreadRendezvous tids;
  parallel_for_each(
      kImages,
      [&](std::int64_t image) {
        tids.check_in();
        gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, kM, kN, kK, 1.0f,
                    a.data() + image * kM * kK, b.data() + image * kK * kN,
                    0.0f, c.data() + image * kM * kN);
      },
      /*min_chunk=*/1);

  EXPECT_GE(tids.distinct(), 2u);

  // The work-shared results must still be exact parity with the reference.
  std::vector<float> c_ref(static_cast<std::size_t>(kM * kN));
  for (std::int64_t image = 0; image < kImages; ++image) {
    gemm::sgemm_naive(gemm::Trans::kNo, gemm::Trans::kNo, kM, kN, kK, 1.0f,
                      a.data() + image * kM * kK, kK,
                      b.data() + image * kK * kN, kN, 0.0f, c_ref.data(), kN);
    EXPECT_LT(max_rel_diff(c.data() + image * kM * kN, c_ref.data(), kM * kN),
              2e-4)
        << "image " << image;
  }
}

}  // namespace
}  // namespace ucudnn

int main(int argc, char** argv) {
  // Must happen before anything touches ThreadPool::global().
  ::setenv("UCUDNN_NUM_THREADS", "4", 1);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
