// Property-based suites over SYNTHETIC benchmark tables: the WR dynamic
// program and the desirable-set construction are checked against brute-force
// enumeration on randomized instances, including the paper's §III-C1
// optimality lemma (pruning never loses the ILP optimum). Synthetic tables
// decouple these checks from the device model, so they exercise the
// optimizer's combinatorial core directly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "core/types.h"
#include "core/wd_optimizer.h"
#include "core/wr_optimizer.h"
#include "ilp/ilp.h"

namespace ucudnn::core {
namespace {

// Builds a random benchmark table: `sizes` micro sizes 1..batch, each with
// `algos` micro-configurations of random time and workspace. Per-sample
// times shrink with size (realistic batching efficiency) plus noise.
MicroBenchmark random_table(unsigned seed, std::int64_t batch, int algos,
                            BatchSizePolicy policy) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> noise(0.7, 1.3);
  std::uniform_real_distribution<double> base_cost(0.5, 4.0);
  std::uniform_int_distribution<std::int64_t> ws_per_sample(0, 1000);

  MicroBenchmark table;
  table.sizes = candidate_micro_sizes(policy, batch);
  table.perfs.resize(table.sizes.size());
  std::vector<double> algo_cost(static_cast<std::size_t>(algos));
  std::vector<std::int64_t> algo_ws(static_cast<std::size_t>(algos));
  for (int a = 0; a < algos; ++a) {
    algo_cost[static_cast<std::size_t>(a)] = base_cost(rng);
    algo_ws[static_cast<std::size_t>(a)] = ws_per_sample(rng);
  }
  for (std::size_t i = 0; i < table.sizes.size(); ++i) {
    const double b = static_cast<double>(table.sizes[i]);
    for (int a = 0; a < algos; ++a) {
      mcudnn::AlgoPerf perf;
      perf.algo = a;
      perf.status = Status::kSuccess;
      perf.time_ms = algo_cost[static_cast<std::size_t>(a)] *
                     (b + 3.0) *  // fixed overhead + linear term
                     noise(rng);
      perf.memory = static_cast<std::size_t>(
          algo_ws[static_cast<std::size_t>(a)] * table.sizes[i]);
      table.perfs[i].push_back(perf);
    }
    std::sort(table.perfs[i].begin(), table.perfs[i].end(),
              [](const auto& l, const auto& r) { return l.time_ms < r.time_ms; });
  }
  return table;
}

double brute_force_wr(const MicroBenchmark& table, std::int64_t batch,
                      std::size_t limit) {
  if (batch == 0) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < table.sizes.size(); ++i) {
    if (table.sizes[i] > batch) continue;
    for (const auto& perf : table.perfs[i]) {
      if (perf.memory > limit) continue;
      best = std::min(best, perf.time_ms +
                                brute_force_wr(table, batch - table.sizes[i],
                                               limit));
      break;  // perfs sorted by time: first fitting one is the best
    }
  }
  return best;
}

class WrPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WrPropertyTest, DpMatchesBruteForceOnRandomTables) {
  const unsigned seed = GetParam();
  const std::int64_t batch = 7 + (seed % 6);
  const auto table = random_table(seed, batch, 3 + seed % 3,
                                  BatchSizePolicy::kAll);
  for (const std::size_t limit : {std::size_t{0}, std::size_t{500},
                                  std::size_t{2000}, std::size_t{100000}}) {
    const double expected = brute_force_wr(table, batch, limit);
    if (!std::isfinite(expected)) {
      EXPECT_THROW(optimize_wr(table, batch, limit), Error);
      continue;
    }
    const Configuration config = optimize_wr(table, batch, limit);
    EXPECT_NEAR(config.time_ms, expected, 1e-9) << "limit " << limit;
    EXPECT_EQ(config.batch, batch);
    EXPECT_LE(config.workspace, limit);
  }
}

TEST_P(WrPropertyTest, FrontIsParetoAndCoversEveryLimit) {
  const unsigned seed = GetParam();
  const std::int64_t batch = 6 + (seed % 5);
  const auto table = random_table(seed * 131, batch, 4,
                                  BatchSizePolicy::kAll);
  const std::size_t cap = 50000;
  const auto front = desirable_configurations(table, batch, cap);
  ASSERT_FALSE(front.empty());
  // Pareto structure.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].workspace, front[i - 1].workspace);
    EXPECT_LT(front[i].time_ms, front[i - 1].time_ms);
  }
  // Each element is internally consistent.
  for (const auto& config : front) {
    EXPECT_EQ(config.batch, batch);
    double time = 0.0;
    std::size_t ws = 0;
    for (const auto& micro : config.micro) {
      time += micro.time_ms;
      ws = std::max(ws, micro.workspace);
    }
    EXPECT_NEAR(config.time_ms, time, 1e-9);
    EXPECT_EQ(config.workspace, ws);
    EXPECT_LE(config.workspace, cap);
  }
  // The front answers every WR query: best-within-limit == WR optimum.
  for (const std::size_t limit : {std::size_t{300}, std::size_t{1500},
                                  std::size_t{20000}, cap}) {
    const double expected = brute_force_wr(table, batch, limit);
    double from_front = std::numeric_limits<double>::infinity();
    for (const auto& config : front) {
      if (config.workspace <= limit) {
        from_front = std::min(from_front, config.time_ms);
      }
    }
    if (std::isfinite(expected)) {
      EXPECT_NEAR(from_front, expected, 1e-9) << "limit " << limit;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WrPropertyTest,
                         ::testing::Range(0u, 12u));

// The §III-C1 lemma: solving the WD ILP over the PRUNED desirable sets gives
// the same optimal objective as solving it over all (brute-force enumerated)
// configurations.
TEST(WdLemmaTest, PruningPreservesTheIlpOptimum) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    const std::int64_t batch = 5;
    const int num_kernels = 3;
    std::vector<MicroBenchmark> tables;
    for (int k = 0; k < num_kernels; ++k) {
      tables.push_back(random_table(seed * 17 + static_cast<unsigned>(k),
                                    batch, 3, BatchSizePolicy::kAll));
    }
    const std::size_t total_limit = 6000;

    // Brute force: enumerate ALL divisions of each kernel (ordered
    // compositions collapse to multisets; enumerate recursively).
    struct Enumerator {
      const MicroBenchmark& table;
      std::size_t cap;
      std::vector<std::pair<double, std::size_t>> configs;  // (time, ws)
      void recurse(std::int64_t remaining, std::int64_t max_size, double time,
                   std::size_t ws) {
        if (remaining == 0) {
          configs.emplace_back(time, ws);
          return;
        }
        for (std::size_t i = 0; i < table.sizes.size(); ++i) {
          const std::int64_t size = table.sizes[i];
          if (size > remaining || size > max_size) continue;
          for (const auto& perf : table.perfs[i]) {
            if (perf.memory > cap) continue;
            recurse(remaining - size, size, time + perf.time_ms,
                    std::max(ws, perf.memory));
          }
        }
      }
    };

    std::vector<std::vector<std::pair<double, std::size_t>>> all_sets;
    for (const auto& table : tables) {
      Enumerator e{table, total_limit, {}};
      e.recurse(batch, batch, 0.0, 0);
      all_sets.push_back(std::move(e.configs));
    }
    // Brute-force joint optimum over the cross product.
    double best = std::numeric_limits<double>::infinity();
    for (const auto& a : all_sets[0]) {
      for (const auto& b : all_sets[1]) {
        for (const auto& c : all_sets[2]) {
          const std::size_t ws =
              round_up(a.second, kWdAlignment) +
              round_up(b.second, kWdAlignment) +
              round_up(c.second, kWdAlignment);
          if (ws <= total_limit) {
            best = std::min(best, a.first + b.first + c.first);
          }
        }
      }
    }
    ASSERT_TRUE(std::isfinite(best)) << "seed " << seed;

    // Pruned path: desirable sets -> MCKP.
    ilp::MckpProblem mckp;
    mckp.capacity = static_cast<std::int64_t>(total_limit);
    for (const auto& table : tables) {
      const auto front = desirable_configurations(table, batch, total_limit);
      std::vector<ilp::MckpItem> group;
      for (const auto& config : front) {
        group.push_back(ilp::MckpItem{
            config.time_ms,
            static_cast<std::int64_t>(round_up(config.workspace, kWdAlignment))});
      }
      mckp.groups.push_back(std::move(group));
    }
    const ilp::MckpResult result = ilp::solve_mckp(mckp);
    ASSERT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_NEAR(result.cost, best, 1e-9) << "seed " << seed;
  }
}

TEST(WdLemmaTest, LpRelaxationLowerBoundsTheIlp) {
  // The simplex relaxation of the WD ILP must lower-bound the integral
  // optimum (sanity linking the two solver layers).
  for (unsigned seed = 50; seed < 56; ++seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> cost(1.0, 9.0);
    std::uniform_int_distribution<std::int64_t> weight(0, 30);
    ilp::MckpProblem p;
    p.capacity = 60;
    p.groups.resize(4);
    for (auto& group : p.groups) {
      for (int i = 0; i < 3; ++i) {
        group.push_back(ilp::MckpItem{cost(rng), weight(rng)});
      }
    }
    const ilp::LinearProgram lp = ilp::mckp_to_ilp(p);
    const ilp::LpResult relaxed = ilp::solve_lp(lp);
    const ilp::IlpResult integral = ilp::solve_binary_ilp(lp);
    ASSERT_TRUE(relaxed.feasible);
    ASSERT_TRUE(integral.feasible);
    EXPECT_LE(relaxed.objective, integral.objective + 1e-6) << "seed " << seed;
  }
}

TEST(MicroSizesPropertyTest, EveryBatchIsCoverable) {
  // Any mini-batch must be exactly coverable by candidate sizes under every
  // policy (otherwise the WR DP could be infeasible with fitting algos).
  for (std::int64_t batch = 1; batch <= 70; ++batch) {
    for (const auto policy :
         {BatchSizePolicy::kAll, BatchSizePolicy::kPowerOfTwo,
          BatchSizePolicy::kUndivided}) {
      const auto sizes = candidate_micro_sizes(policy, batch);
      std::vector<char> reachable(static_cast<std::size_t>(batch) + 1, 0);
      reachable[0] = 1;
      for (std::int64_t b = 1; b <= batch; ++b) {
        for (const std::int64_t s : sizes) {
          if (s <= b && reachable[static_cast<std::size_t>(b - s)]) {
            reachable[static_cast<std::size_t>(b)] = 1;
            break;
          }
        }
      }
      EXPECT_TRUE(reachable[static_cast<std::size_t>(batch)])
          << to_string(policy) << " batch " << batch;
    }
  }
}

TEST(ParetoPropertyTest, PruneIsIdempotentAndOrderInvariant) {
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> time(1.0, 50.0);
  std::uniform_int_distribution<std::size_t> ws(0, 5000);
  std::vector<Configuration> configs;
  for (int i = 0; i < 60; ++i) {
    Configuration c;
    c.append(MicroConfig{0, 1, time(rng), ws(rng)});
    configs.push_back(std::move(c));
  }
  auto shuffled = configs;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  pareto_prune(configs);
  pareto_prune(shuffled);
  ASSERT_EQ(configs.size(), shuffled.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(configs[i].workspace, shuffled[i].workspace);
    EXPECT_DOUBLE_EQ(configs[i].time_ms, shuffled[i].time_ms);
  }
  auto again = configs;
  pareto_prune(again);
  EXPECT_EQ(again.size(), configs.size());
}

TEST(ParetoPropertyTest, WorkspaceCombinerIsMaxNotSum) {
  // DESIGN.md §5(4): sequential micro-batches share one buffer, so the
  // configuration's footprint must be the max of its micro workspaces. A
  // sum-combiner would forbid exactly the configurations the paper relies
  // on (e.g. 8 x 32:FFT would cost 8x the memory).
  Configuration c;
  for (int i = 0; i < 8; ++i) c.append(MicroConfig{4, 32, 2.0, 45 << 20});
  EXPECT_EQ(c.workspace, std::size_t{45} << 20);      // max
  EXPECT_NE(c.workspace, std::size_t{8 * 45} << 20);  // not sum
  EXPECT_EQ(c.batch, 256);
}

}  // namespace
}  // namespace ucudnn::core
