// Tests for the mini-Caffe framework: layer shape inference, finite-
// difference gradient checks through every layer type (the property that
// backward() really is the derivative of forward()), model-zoo shape
// sanity, virtual-mode timing, and the per-layer memory accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "frameworks/caffepp/model_zoo.h"
#include "frameworks/caffepp/net.h"

namespace ucudnn::caffepp {
namespace {

std::shared_ptr<device::Device> cpu() {
  return std::make_shared<device::Device>(device::host_cpu_spec());
}

std::shared_ptr<device::Device> p100() {
  return std::make_shared<device::Device>(device::p100_sxm2_spec());
}

core::Options wr_options(std::size_t limit = std::size_t{1} << 20) {
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = limit;
  return opts;
}

// Scalar objective: mean of the net's final blob (matches the 1/count diff
// seed Net::backward uses).
double objective(Net& net, const std::string& top) {
  net.forward();
  Blob* b = net.blob(top);
  double acc = 0.0;
  for (std::int64_t i = 0; i < b->count(); ++i) acc += b->data()[i];
  return acc / static_cast<double>(b->count());
}

// Finite-difference check of d(objective)/d(input) against the analytic
// bottom diff, on a sample of elements.
void check_input_gradient(Net& net, const std::string& input,
                          const std::string& top, double tolerance = 6e-2,
                          float eps = 5e-2f) {
  net.init(7);
  const double base = objective(net, top);
  (void)base;
  net.forward();
  net.backward();
  Blob* in = net.blob(input);
  std::vector<float> analytic(static_cast<std::size_t>(in->count()));
  std::copy(in->diff(), in->diff() + in->count(), analytic.begin());

  const std::int64_t stride = std::max<std::int64_t>(1, in->count() / 24);
  double worst = 0.0;
  double scale = 1e-8;
  for (std::int64_t i = 0; i < in->count(); i += stride) {
    const float saved = in->data()[i];
    in->data()[i] = saved + eps;
    const double plus = objective(net, top);
    in->data()[i] = saved - eps;
    const double minus = objective(net, top);
    in->data()[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    worst = std::max(worst, std::abs(numeric - analytic[i]));
    scale = std::max(
        {scale, std::abs(numeric), static_cast<double>(std::abs(analytic[i]))});
  }
  EXPECT_LT(worst / scale, tolerance);
}

TEST(NetBuilderTest, ShapesPropagate) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "shapes");
  net.input("data", {2, 3, 17, 17});
  net.conv("c1", "data", 8, 3, 2, 1);          // 17 -> 9
  net.pool_max("p1", "c1", 3, 2);              // 9 -> 4
  net.fc("f1", "p1", 10);
  EXPECT_EQ(net.blob("c1")->shape(), (TensorShape{2, 8, 9, 9}));
  EXPECT_EQ(net.blob("p1")->shape(), (TensorShape{2, 8, 4, 4}));
  EXPECT_EQ(net.blob("f1")->shape(), (TensorShape{2, 10, 1, 1}));
}

TEST(NetBuilderTest, RejectsDuplicatesAndUnknownBlobs) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "bad");
  net.input("data", {1, 1, 4, 4});
  EXPECT_THROW(net.input("data", {1, 1, 4, 4}), Error);
  EXPECT_THROW(net.conv("c", "nope", 1, 3), Error);
  net.input("a", {1, 2, 4, 4});
  net.input("b", {1, 3, 4, 4});
  EXPECT_THROW(net.eltwise_sum("s", "a", "b"), Error);  // shape mismatch
}

// ----------------------------- gradient checks ------------------------------

TEST(GradientTest, ConvLayer) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {2, 3, 7, 7});
  net.conv("c", "data", 4, 3, 1, 1);
  check_input_gradient(net, "data", "c");
}

TEST(GradientTest, ConvLayerStrided) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {2, 2, 9, 9});
  net.conv("c", "data", 3, 3, 2, 0);
  check_input_gradient(net, "data", "c");
}

TEST(GradientTest, ReluLayerOutOfPlace) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {2, 3, 5, 5});
  net.relu("r", "data", /*in_place=*/false);
  check_input_gradient(net, "data", "r");
}

TEST(GradientTest, MaxPoolLayer) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {2, 2, 8, 8});
  net.pool_max("p", "data", 2, 2);
  // Small eps: large perturbations flip the argmax (max-pool is only
  // piecewise differentiable).
  check_input_gradient(net, "data", "p", 6e-2, /*eps=*/1e-3f);
}

TEST(GradientTest, AvgPoolLayer) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {2, 2, 8, 8});
  net.pool_avg("p", "data", 2, 2);
  check_input_gradient(net, "data", "p");
}

TEST(GradientTest, LrnLayer) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {2, 8, 4, 4});
  net.lrn("n", "data");
  check_input_gradient(net, "data", "n");
}

TEST(GradientTest, FcLayer) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {3, 4, 2, 2});
  net.fc("f", "data", 5);
  check_input_gradient(net, "data", "f");
}

TEST(GradientTest, BatchNormLayer) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {4, 3, 5, 5});
  // A plain mean objective is degenerate for BN (the normalized output's
  // batch mean is constant), so feed it through an FC head.
  std::string top = net.batch_norm("bn", "data");
  top = net.fc("head", top, 3);
  check_input_gradient(net, "data", top, /*tolerance=*/0.1);
}

TEST(GradientTest, EltwiseAndConcat) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {2, 3, 5, 5});
  net.conv("a", "data", 3, 1);
  net.conv("b", "data", 3, 1);
  net.eltwise_sum("s", "a", "b");
  net.concat("cat", {"s", "a"});
  check_input_gradient(net, "data", "cat");
}

TEST(GradientTest, SoftmaxLoss) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {4, 6, 1, 1});
  net.softmax_loss("loss", "data");
  check_input_gradient(net, "data", "loss");
}

TEST(GradientTest, SmallCompositeNetwork) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "g");
  net.input("data", {2, 3, 12, 12});
  std::string top = net.conv("c1", "data", 6, 3, 1, 1);
  top = net.relu("r1", top);
  top = net.pool_max("p1", top, 2, 2);
  top = net.conv("c2", top, 8, 3, 1, 1);
  top = net.relu("r2", top);
  top = net.fc("f1", top, 5);
  top = net.softmax_loss("loss", top);
  check_input_gradient(net, "data", top, /*tolerance=*/0.1, /*eps=*/2e-3f);
}

// --------------------------------- zoo --------------------------------------

TEST(ModelZooTest, AlexNetShapes) {
  core::UcudnnHandle handle(p100(), wr_options(std::size_t{64} << 20));
  Net net(handle, "alexnet");
  build_alexnet(net, 16);
  EXPECT_EQ(net.blob("conv1")->shape(), (TensorShape{16, 96, 55, 55}));
  EXPECT_EQ(net.blob("pool1")->shape(), (TensorShape{16, 96, 27, 27}));
  EXPECT_EQ(net.blob("conv2")->shape(), (TensorShape{16, 256, 27, 27}));
  EXPECT_EQ(net.blob("pool2")->shape(), (TensorShape{16, 256, 13, 13}));
  EXPECT_EQ(net.blob("conv5")->shape(), (TensorShape{16, 256, 13, 13}));
  EXPECT_EQ(net.blob("pool5")->shape(), (TensorShape{16, 256, 6, 6}));
  EXPECT_EQ(net.blob("fc8")->shape(), (TensorShape{16, 1000, 1, 1}));
  EXPECT_EQ(net.conv_problems().size(), 5u);
}

TEST(ModelZooTest, ResNet18Shapes) {
  core::UcudnnHandle handle(p100(), wr_options(std::size_t{64} << 20));
  Net net(handle, "resnet18");
  build_resnet18(net, 4);
  EXPECT_EQ(net.blob("conv1")->shape(), (TensorShape{4, 64, 112, 112}));
  EXPECT_EQ(net.blob("pool1")->shape(), (TensorShape{4, 64, 56, 56}));
  EXPECT_EQ(net.blob("res5b_sum")->shape(), (TensorShape{4, 512, 7, 7}));
  EXPECT_EQ(net.blob("pool5")->shape(), (TensorShape{4, 512, 1, 1}));
  // 2 blocks/stage * 2 convs + 3 downsample convs + conv1 = 20.
  EXPECT_EQ(net.conv_problems().size(), 20u);
}

TEST(ModelZooTest, ResNet50Shapes) {
  core::UcudnnHandle handle(p100(), wr_options(std::size_t{64} << 20));
  Net net(handle, "resnet50");
  build_resnet50(net, 2);
  EXPECT_EQ(net.blob("res5c_sum")->shape(), (TensorShape{2, 2048, 7, 7}));
  // 16 blocks * 3 convs + 4 downsample + conv1 = 53.
  EXPECT_EQ(net.conv_problems().size(), 53u);
}

TEST(ModelZooTest, DenseNet40Shapes) {
  core::UcudnnHandle handle(p100(), wr_options(std::size_t{64} << 20));
  Net net(handle, "densenet");
  build_densenet40(net, 8, 40);
  // After block 1: 80 + 12*40 = 560 channels at 32x32.
  EXPECT_EQ(net.blob("dense1_12_concat")->shape(),
            (TensorShape{8, 560, 32, 32}));
  // Conv layers: 1 stem + 36 dense + 2 transitions = 39.
  EXPECT_EQ(net.conv_problems().size(), 39u);
}

TEST(ModelZooTest, InceptionModuleShapes) {
  core::UcudnnHandle handle(p100(), wr_options(std::size_t{64} << 20));
  Net net(handle, "inception");
  net.input("data", {8, 192, 28, 28});
  const std::string top = build_inception_module(net, "data", "inc3a");
  EXPECT_EQ(net.blob(top)->shape(), (TensorShape{8, 256, 28, 28}));
  EXPECT_EQ(net.conv_problems().size(), 6u);
}

// ----------------------------- virtual timing --------------------------------

TEST(NetTimingTest, VirtualModeProducesPerLayerBreakdown) {
  auto dev = p100();
  core::UcudnnHandle handle(dev, wr_options(std::size_t{64} << 20));
  Net net(handle, "alexnet");
  build_alexnet(net, 64);
  const auto times = net.time(2);
  EXPECT_FALSE(times.empty());
  double total = 0.0;
  for (const auto& lt : times) {
    EXPECT_GE(lt.forward_ms, 0.0) << lt.name;
    EXPECT_GE(lt.backward_ms, 0.0) << lt.name;
    total += lt.forward_ms + lt.backward_ms;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_NEAR(net.last_iteration_ms(), total, 1e-9);
  // Convolutions must dominate AlexNet (they do in the paper's breakdowns).
  double conv_total = 0.0;
  for (const auto& lt : times) {
    if (lt.name.rfind("conv", 0) == 0) {
      conv_total += lt.forward_ms + lt.backward_ms;
    }
  }
  EXPECT_GT(conv_total, 0.4 * total);
}

TEST(NetTimingTest, LargerWorkspaceIsFasterInVirtualMode) {
  double times[2] = {0, 0};
  int idx = 0;
  for (const std::size_t limit : {std::size_t{8} << 20, std::size_t{512} << 20}) {
    auto dev = p100();
    core::UcudnnHandle handle(dev, wr_options(limit));
    Net net(handle, "alexnet");
    build_alexnet(net, 64);
    net.time(1);
    times[idx++] = net.last_iteration_ms();
  }
  EXPECT_LT(times[1], times[0]);
}

TEST(NetMemoryTest, ReportCoversLayersAndWorkspace) {
  auto dev = p100();
  core::UcudnnHandle handle(dev, wr_options(std::size_t{64} << 20));
  Net net(handle, "alexnet");
  build_alexnet(net, 32);
  net.forward();  // triggers workspace allocation
  const auto report = net.memory_report();
  ASSERT_TRUE(report.count("conv2"));
  EXPECT_GT(report.at("conv2").data, 0u);
  EXPECT_GT(report.at("conv2").param, 0u);
  EXPECT_GT(report.at("conv2").workspace, 0u);
  ASSERT_TRUE(report.count("fc6"));
  EXPECT_GT(report.at("fc6").param, report.at("conv2").param);
  // Total tracked bytes match the device's view.
  std::size_t total = 0;
  for (const auto& [layer, m] : report) total += m.total();
  EXPECT_EQ(total, dev->bytes_in_use());
}

TEST(NetNumericTest, ForwardBackwardRunsOnCpu) {
  core::UcudnnHandle handle(cpu(), wr_options());
  Net net(handle, "tiny");
  net.input("data", {2, 3, 16, 16});
  std::string top = net.conv("c1", "data", 4, 3, 1, 1);
  top = net.relu("r1", top);
  top = net.batch_norm("bn1", top);
  top = net.pool_max("p1", top, 2, 2);
  top = net.fc("f1", top, 10);
  top = net.dropout("d1", top, 0.5f);
  top = net.softmax_loss("loss", top);
  net.init(3);
  net.forward();
  const float loss = net.blob("loss")->data()[0];
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
  net.backward();
  // Input gradient must be finite and not identically zero.
  Blob* in = net.blob("data");
  double norm = 0.0;
  for (std::int64_t i = 0; i < in->count(); ++i) {
    EXPECT_TRUE(std::isfinite(in->diff()[i]));
    norm += std::abs(in->diff()[i]);
  }
  EXPECT_GT(norm, 0.0);
}

}  // namespace
}  // namespace ucudnn::caffepp
