// Minimal recursive-descent JSON validator shared by the telemetry tests:
// accepts exactly the JSON grammar (objects, arrays, strings with escapes,
// numbers, true/false/null) and returns false on the first syntax error.
// Enough to prove an exported document would load in chrome://tracing or a
// real JSON parser without dragging in a JSON library.
#pragma once

#include <cctype>
#include <string>

namespace ucudnn::test {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool validate() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();  // trailing garbage is a failure
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit()) return false;
    while (digit()) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool digit() {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace ucudnn::test
