// End-to-end request-tracing tests over the serving stack
// (docs/observability.md): every admitted request gets a process-unique
// trace id at submit(), and the spans it leaves behind — serve_admit,
// serve_queue, serve_exec_request, serve_resolve — reconstruct its full
// admit -> queue -> batch -> exec -> resolve timeline even when the request
// was coalesced into a merged batch executed by one of several workers.
// Also covers the flight recorder's dump-on-fault path: an armed singleton
// with a dump file configured writes a ucudnn-flight-v1 dump the moment a
// fault-injector site fires.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/fault_injection.h"
#include "json_validator.h"
#include "serve/server.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

using serve::ServeOptions;
using serve::ServeRequest;
using serve::Server;
using serve::TicketPtr;

std::shared_ptr<device::Device> cpu() {
  return std::make_shared<device::Device>(device::host_cpu_spec());
}

core::Options core_opts() {
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = std::size_t{4} << 20;
  return opts;
}

kernels::ConvProblem sample_problem(std::int64_t batch = 1) {
  return kernels::ConvProblem({batch, 2, 6, 6}, {4, 2, 3, 3},
                              {.pad_h = 1, .pad_w = 1});
}

/// One client-side request: owns its operand buffers.
struct Client {
  explicit Client(std::uint64_t seed, const AlignedBuffer<float>& weights)
      : problem(sample_problem()),
        input(static_cast<std::size_t>(problem.x.count())),
        output(static_cast<std::size_t>(problem.y.count()), true),
        weights_(weights.data()) {
    fill_random(input.data(), problem.x.count(), seed);
  }

  ServeRequest request() {
    ServeRequest req;
    req.problem = problem;
    req.input = input.data();
    req.weights = weights_;
    req.output = output.data();
    return req;
  }

  kernels::ConvProblem problem;
  AlignedBuffer<float> input;
  AlignedBuffer<float> output;
  const float* weights_;
};

std::string temp_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/" + stem + "_" +
         std::to_string(static_cast<unsigned long long>(::getpid()));
}

class RequestTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::TraceRecorder::instance().set_enabled(true);
    telemetry::TraceRecorder::instance().clear();
  }
  void TearDown() override {
    telemetry::TraceRecorder::instance().set_enabled(false);
    telemetry::TraceRecorder::instance().clear();
    FaultInjector::instance().configure("");
  }
};

TEST_F(RequestTraceTest, CoalescedRunYieldsCompleteTimelinePerRequest) {
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 64;
  opts.batch_window_us = 300;  // hold batches open: force coalescing
  opts.max_batch = 8;
  Server server(handle, opts);

  constexpr int kRequests = 24;
  AlignedBuffer<float> weights(
      static_cast<std::size_t>(sample_problem().w.count()));
  fill_random(weights.data(), sample_problem().w.count(), 7);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < kRequests; ++i) {
    clients.push_back(
        std::make_unique<Client>(static_cast<std::uint64_t>(i) + 1, weights));
    tickets.push_back(server.submit(clients.back()->request()));
  }
  for (const TicketPtr& ticket : tickets) {
    EXPECT_EQ(ticket->wait(), Status::kSuccess);
  }
  server.drain();

  // Every ticket got a distinct non-zero trace id.
  std::map<std::uint64_t, int> ids;
  for (const TicketPtr& ticket : tickets) {
    ASSERT_NE(ticket->trace_id(), 0u);
    ++ids[ticket->trace_id()];
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRequests));

  // Reconstruct each request's timeline from the recorded spans.
  const std::vector<telemetry::SpanEvent> events =
      telemetry::TraceRecorder::instance().events();
  struct Timeline {
    const telemetry::SpanEvent* admit = nullptr;
    const telemetry::SpanEvent* queue = nullptr;
    const telemetry::SpanEvent* exec = nullptr;
    const telemetry::SpanEvent* resolve = nullptr;
  };
  std::map<std::uint64_t, Timeline> timelines;
  std::vector<const telemetry::SpanEvent*> batch_spans;
  for (const telemetry::SpanEvent& event : events) {
    if (event.name == "serve_batch") batch_spans.push_back(&event);
    if (event.trace_id == 0 || ids.find(event.trace_id) == ids.end()) continue;
    Timeline& tl = timelines[event.trace_id];
    if (event.name == "serve_admit") tl.admit = &event;
    if (event.name == "serve_queue") tl.queue = &event;
    if (event.name == "serve_exec_request") tl.exec = &event;
    if (event.name == "serve_resolve") tl.resolve = &event;
  }

  ASSERT_EQ(timelines.size(), static_cast<std::size_t>(kRequests));
  for (const TicketPtr& ticket : tickets) {
    const std::uint64_t id = ticket->trace_id();
    SCOPED_TRACE("trace id " + std::to_string(id));
    const Timeline& tl = timelines[id];
    ASSERT_NE(tl.admit, nullptr);
    ASSERT_NE(tl.queue, nullptr);
    ASSERT_NE(tl.exec, nullptr);
    ASSERT_NE(tl.resolve, nullptr);
    // The queue span starts at submit time and ends at batch pickup; the
    // exec window starts at or after pickup; resolution comes last.
    EXPECT_LE(tl.queue->ts_us, tl.admit->ts_us + 1.0);
    EXPECT_GE(tl.exec->ts_us + 1e-3, tl.queue->ts_us);
    EXPECT_GE(tl.resolve->ts_us + 1e-3, tl.exec->ts_us);
    EXPECT_EQ(tl.resolve->detail, "UCUDNN_STATUS_SUCCESS");
  }

  // The merged-batch spans carry their member trace ids, and with a held
  // batch window at least one batch actually coalesced several requests.
  ASSERT_FALSE(batch_spans.empty());
  std::size_t members_seen = 0;
  for (const TicketPtr& ticket : tickets) {
    const std::string needle = std::to_string(ticket->trace_id());
    bool found = false;
    for (const telemetry::SpanEvent* span : batch_spans) {
      ASSERT_NE(span->detail.find("members=["), std::string::npos);
      const std::size_t list = span->detail.find("members=[");
      if (span->detail.find(needle, list) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (found) ++members_seen;
  }
  EXPECT_EQ(members_seen, static_cast<std::size_t>(kRequests));
  EXPECT_LT(batch_spans.size(), static_cast<std::size_t>(kRequests))
      << "batch window held open should coalesce at least once";

  // The per-request export is syntactically valid JSON and names every id.
  const std::string json =
      telemetry::TraceRecorder::instance().request_trace_json();
  EXPECT_TRUE(ucudnn::test::JsonValidator(json).validate());
  for (const TicketPtr& ticket : tickets) {
    EXPECT_NE(
        json.find("\"trace_id\":" + std::to_string(ticket->trace_id())),
        std::string::npos);
  }
}

TEST_F(RequestTraceTest, FaultFireDumpsFlightRecorder) {
  telemetry::FlightRecorder& flight = telemetry::FlightRecorder::instance();
  const std::string path = temp_path("fault_flight_dump");
  const std::string old_path = flight.dump_path();
  const bool was_armed = flight.is_armed();
  flight.set_dump_path(path);
  flight.set_armed(true);
  const std::uint64_t dumps_before = flight.dump_count();

  // One transient execution fault; the serve retry ladder absorbs it.
  FaultInjector::instance().configure("serve.exec:every=1,count=1");

  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.retry_backoff_us = 10;
  Server server(handle, opts);
  AlignedBuffer<float> weights(
      static_cast<std::size_t>(sample_problem().w.count()));
  fill_random(weights.data(), sample_problem().w.count(), 7);
  Client client(3, weights);
  EXPECT_EQ(server.submit(client.request())->wait(), Status::kSuccess);
  server.drain();

  EXPECT_GT(flight.dump_count(), dumps_before);
  const Server::Counters counters = server.counters();
  EXPECT_EQ(counters.retried, 1u);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "fault fire should have dumped " << path;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  EXPECT_TRUE(ucudnn::test::JsonValidator(text).validate());
  EXPECT_NE(text.find("\"schema\":\"ucudnn-flight-v1\""), std::string::npos);
  EXPECT_NE(text.find("serve.exec"), std::string::npos);  // the fault event

  flight.set_armed(was_armed);
  flight.set_dump_path(old_path);
  std::remove(path.c_str());
}

// Run by the obs_fault_dump_env ctest with UCUDNN_FAULTS and
// UCUDNN_FLIGHT_FILE in the environment: the singleton arms itself from the
// env, the fault schedule fires mid-serve, and the automatic dump lands
// without any programmatic arming — the path a production incident takes.
TEST_F(RequestTraceTest, DumpOnFaultEnv) {
  const char* faults = std::getenv("UCUDNN_FAULTS");
  const char* flight_file = std::getenv("UCUDNN_FLIGHT_FILE");
  if (faults == nullptr || flight_file == nullptr) {
    GTEST_SKIP() << "UCUDNN_FAULTS/UCUDNN_FLIGHT_FILE not set; exercised by "
                    "the obs_fault_dump_env ctest";
  }
  telemetry::FlightRecorder& flight = telemetry::FlightRecorder::instance();
  ASSERT_TRUE(flight.is_armed());
  const std::uint64_t dumps_before = flight.dump_count();

  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.retry_backoff_us = 10;
  Server server(handle, opts);
  AlignedBuffer<float> weights(
      static_cast<std::size_t>(sample_problem().w.count()));
  fill_random(weights.data(), sample_problem().w.count(), 7);
  Client client(5, weights);
  const Status status = server.submit(client.request())->wait();
  server.drain();
  EXPECT_TRUE(status == Status::kSuccess || status == Status::kExecutionFailed);
  EXPECT_GT(flight.dump_count(), dumps_before);
  std::FILE* f = std::fopen(flight_file, "rb");
  EXPECT_NE(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

}  // namespace
}  // namespace ucudnn
