// Tests for the device simulator: profiles, the analytic time model's
// qualitative properties, memory tracking with capacity enforcement, the
// virtual clock, and multi-device nodes.
#include <gtest/gtest.h>

#include "common/status.h"
#include "device/device.h"
#include "kernels/registry.h"

namespace ucudnn::device {
namespace {

using kernels::ConvProblem;

ConvProblem conv2_like(std::int64_t batch) {
  // AlexNet conv2 shape.
  return ConvProblem({batch, 96, 27, 27}, {256, 96, 5, 5},
                     {.pad_h = 2, .pad_w = 2});
}

TEST(DeviceSpecTest, ProfilesMatchTableI) {
  EXPECT_EQ(p100_sxm2_spec().name, "P100-SXM2");
  EXPECT_NEAR(p100_sxm2_spec().peak_sp_gflops, 10600.0, 1.0);
  EXPECT_NEAR(p100_sxm2_spec().mem_bandwidth_gbs, 732.0, 1.0);
  EXPECT_EQ(p100_sxm2_spec().memory_bytes, std::size_t{16} << 30);
  EXPECT_NEAR(v100_sxm2_spec().peak_sp_gflops, 15700.0, 1.0);
  EXPECT_NEAR(v100_sxm2_spec().mem_bandwidth_gbs, 900.0, 1.0);
  EXPECT_FALSE(k80_spec().measured);
  EXPECT_TRUE(host_cpu_spec().measured);
}

TEST(DeviceModelTest, FasterDevicesAreFaster) {
  const Device k80(k80_spec());
  const Device p100(p100_sxm2_spec());
  const Device v100(v100_sxm2_spec());
  const ConvProblem p = conv2_like(256);
  for (int algo : {kernels::fwd_algo::kGemm, kernels::fwd_algo::kFft}) {
    const double tk = k80.model_time_ms(ConvKernelType::kForward, algo, p);
    const double tp = p100.model_time_ms(ConvKernelType::kForward, algo, p);
    const double tv = v100.model_time_ms(ConvKernelType::kForward, algo, p);
    EXPECT_GT(tk, tp);
    EXPECT_GT(tp, tv);
  }
}

TEST(DeviceModelTest, WorkspaceHeavyAlgosBeatZeroWorkspaceOnes) {
  // The premise of the whole paper: at realistic sizes, FFT / batched GEMM /
  // Winograd-nonfused outperform the zero-workspace implicit GEMM.
  const Device p100(p100_sxm2_spec());
  const ConvProblem p = conv2_like(256);
  const double implicit = p100.model_time_ms(
      ConvKernelType::kForward, kernels::fwd_algo::kImplicitGemm, p);
  for (int algo : {kernels::fwd_algo::kGemm, kernels::fwd_algo::kFft}) {
    EXPECT_LT(p100.model_time_ms(ConvKernelType::kForward, algo, p), implicit)
        << kernels::algo_name(ConvKernelType::kForward, algo);
  }
}

TEST(DeviceModelTest, TinyMicroBatchesLoseEfficiency) {
  // Per-sample time must grow as the micro-batch shrinks (utilization term);
  // otherwise the WR optimizer would always pick micro-batch size 1.
  const Device p100(p100_sxm2_spec());
  const int algo = kernels::fwd_algo::kGemm;
  const double t1 =
      p100.model_time_ms(ConvKernelType::kForward, algo, conv2_like(1));
  const double t32 =
      p100.model_time_ms(ConvKernelType::kForward, algo, conv2_like(32));
  const double t256 =
      p100.model_time_ms(ConvKernelType::kForward, algo, conv2_like(256));
  EXPECT_GT(t1 * 32, t32);          // batching 32 is cheaper than 32 singles
  EXPECT_GT(t32 / 32.0, t256 / 256.0);  // per-sample cost still improving
}

TEST(DeviceModelTest, TimeIsMonotoneInBatchOncePipelined) {
  // Below ~batch_half the fixed filter-transform cost and the utilization
  // penalty interact non-monotonically (as on real GPUs); from moderate
  // batches on, more samples must cost more total time.
  const Device p100(p100_sxm2_spec());
  double prev = 0.0;
  for (std::int64_t batch : {8, 16, 32, 64, 128, 256}) {
    const double t = p100.model_time_ms(ConvKernelType::kForward,
                                        kernels::fwd_algo::kFft,
                                        conv2_like(batch));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(DeviceMemoryTest, TracksUsageAndPeak) {
  Device dev(p100_sxm2_spec());
  void* a = dev.allocate(1000, "layer1");
  void* b = dev.allocate(2000, "layer2");
  EXPECT_EQ(dev.bytes_in_use(), 3000u);
  EXPECT_EQ(dev.peak_bytes(), 3000u);
  dev.deallocate(a);
  EXPECT_EQ(dev.bytes_in_use(), 2000u);
  EXPECT_EQ(dev.peak_bytes(), 3000u);
  void* c = dev.allocate(500, "layer1");
  const auto usage = dev.usage_by_tag();
  EXPECT_EQ(usage.at("layer1"), 500u);
  EXPECT_EQ(usage.at("layer2"), 2000u);
  const auto peak = dev.peak_by_tag();
  EXPECT_EQ(peak.at("layer1"), 1000u);
  dev.deallocate(b);
  dev.deallocate(c);
  EXPECT_EQ(dev.bytes_in_use(), 0u);
}

TEST(DeviceMemoryTest, EnforcesCapacity) {
  DeviceSpec tiny = p100_sxm2_spec();
  tiny.memory_bytes = 1024;
  Device dev(tiny);
  void* a = dev.allocate(1000, "x");
  EXPECT_THROW(dev.allocate(100, "y"), Error);
  dev.deallocate(a);
  EXPECT_NO_THROW(dev.deallocate(nullptr));
  void* b = dev.allocate(1024, "z");
  dev.deallocate(b);
}

TEST(DeviceClockTest, AdvancesAndResets) {
  Device dev(p100_sxm2_spec());
  EXPECT_EQ(dev.clock_ms(), 0.0);
  dev.advance_clock_ms(1.5);
  dev.advance_clock_ms(2.5);
  EXPECT_DOUBLE_EQ(dev.clock_ms(), 4.0);
  dev.reset_clock();
  EXPECT_EQ(dev.clock_ms(), 0.0);
}

TEST(DeviceStreamTest, StreamsOverlapAndSyncJoins) {
  Device dev(p100_sxm2_spec());
  dev.advance_stream_ms(0, 5.0);
  dev.advance_stream_ms(1, 3.0);
  dev.advance_stream_ms(2, 7.0);
  // Wall clock is the longest stream (concurrent execution).
  EXPECT_DOUBLE_EQ(dev.clock_ms(), 7.0);
  EXPECT_DOUBLE_EQ(dev.stream_clock_ms(0), 5.0);
  EXPECT_DOUBLE_EQ(dev.stream_clock_ms(1), 3.0);
  EXPECT_DOUBLE_EQ(dev.stream_clock_ms(9), 0.0);  // untouched stream
  dev.sync_streams();
  EXPECT_DOUBLE_EQ(dev.stream_clock_ms(1), 7.0);
  dev.advance_stream_ms(1, 1.0);
  EXPECT_DOUBLE_EQ(dev.clock_ms(), 8.0);
  dev.reset_clock();
  EXPECT_DOUBLE_EQ(dev.clock_ms(), 0.0);
}

TEST(DeviceStreamTest, DefaultClockIsStreamZero) {
  Device dev(p100_sxm2_spec());
  dev.advance_clock_ms(2.5);
  EXPECT_DOUBLE_EQ(dev.stream_clock_ms(0), 2.5);
  EXPECT_DOUBLE_EQ(dev.clock_ms(), 2.5);
}

TEST(NodeTest, HomogeneousDevices) {
  Node node(p100_sxm2_spec(), 4);
  EXPECT_EQ(node.device_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(node.device(i)->spec().name, "P100-SXM2");
    EXPECT_EQ(node.device(i)->ordinal(), static_cast<int>(i));
  }
  EXPECT_THROW(Node(p100_sxm2_spec(), 0), Error);
}

TEST(EfficiencyTableTest, StagedAlgosBeatNaiveOnes) {
  using namespace kernels;
  EXPECT_GT(algo_efficiency(ConvKernelType::kForward, fwd_algo::kGemm),
            algo_efficiency(ConvKernelType::kForward, fwd_algo::kImplicitGemm));
  EXPECT_GT(algo_efficiency(ConvKernelType::kForward, fwd_algo::kImplicitGemm),
            algo_efficiency(ConvKernelType::kForward, fwd_algo::kDirect));
  EXPECT_GT(
      algo_efficiency(ConvKernelType::kBackwardData, bwd_data_algo::kAlgo1),
      algo_efficiency(ConvKernelType::kBackwardData, bwd_data_algo::kAlgo0));
  EXPECT_GT(
      algo_efficiency(ConvKernelType::kBackwardFilter, bwd_filter_algo::kAlgo3),
      algo_efficiency(ConvKernelType::kBackwardFilter, bwd_filter_algo::kAlgo0));
}

}  // namespace
}  // namespace ucudnn::device
