// Cross-validation of every convolution algorithm against the direct
// reference, over a sweep of problem shapes (strides, pads, dilations,
// non-square images, conv vs cross-correlation mode), for all three kernel
// types. Also checks workspace exactness and the alpha/beta contract that
// micro-batched BackwardFilter accumulation relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "kernels/conv_problem.h"
#include "kernels/im2col.h"
#include "kernels/registry.h"
#include "tensor/tensor.h"

namespace ucudnn::kernels {
namespace {

struct ProblemCase {
  std::string name;
  TensorShape x;
  FilterDesc w;
  ConvGeometry geom;
};

std::vector<ProblemCase> test_problems() {
  return {
      {"small3x3", {2, 3, 8, 8}, {4, 3, 3, 3}, {.pad_h = 1, .pad_w = 1}},
      {"pad0_3x3", {2, 2, 7, 9}, {3, 2, 3, 3}, {}},
      {"pad2_5x5", {2, 4, 11, 11}, {5, 4, 5, 5}, {.pad_h = 2, .pad_w = 2}},
      {"stride2", {2, 3, 11, 11}, {4, 3, 3, 3},
       {.pad_h = 1, .pad_w = 1, .stride_h = 2, .stride_w = 2}},
      {"stride4_11x11", {2, 3, 19, 19}, {4, 3, 11, 11},
       {.stride_h = 4, .stride_w = 4}},
      {"dilated", {1, 2, 12, 12}, {3, 2, 3, 3},
       {.pad_h = 2, .pad_w = 2, .dilation_h = 2, .dilation_w = 2}},
      {"asym_pad", {1, 2, 9, 7}, {3, 2, 3, 5}, {.pad_h = 0, .pad_w = 2}},
      {"conv_mode", {2, 3, 8, 8}, {4, 3, 3, 3},
       {.pad_h = 1, .pad_w = 1, .mode = ConvMode::kConvolution}},
      {"conv_mode_5x5", {1, 2, 10, 10}, {3, 2, 5, 5},
       {.pad_h = 2, .pad_w = 2, .mode = ConvMode::kConvolution}},
      {"batch1", {1, 1, 5, 5}, {1, 1, 3, 3}, {.pad_h = 1, .pad_w = 1}},
      {"wide_channels", {2, 16, 6, 6}, {12, 16, 3, 3}, {.pad_h = 1, .pad_w = 1}},
      {"1x1_kernel", {2, 4, 9, 9}, {6, 4, 1, 1}, {}},
      {"odd_output", {1, 2, 9, 9}, {3, 2, 3, 3}, {}},  // 7x7 output (odd)
      {"large_pad_bwd", {1, 2, 8, 8}, {3, 2, 5, 5}, {.pad_h = 4, .pad_w = 4}},
      // > 8 input channels: exercises the FFT channel-chunking loop (Cb = 8)
      // with a ragged final chunk.
      {"chunked_channels", {2, 20, 10, 10}, {6, 20, 3, 3},
       {.pad_h = 1, .pad_w = 1}},
      // Output larger than one 30x30 FFT tile: multi-tile FFT_TILING path.
      {"multi_tile", {1, 3, 40, 40}, {4, 3, 3, 3}, {.pad_h = 1, .pad_w = 1}},
      // Non-square, prime-ish dims: plan edges land on different powers.
      {"tall_image", {1, 2, 37, 11}, {3, 2, 3, 3}, {.pad_h = 1, .pad_w = 1}},
  };
}

class AlgoAgreementTest
    : public ::testing::TestWithParam<std::tuple<ProblemCase, ConvKernelType>> {
};

TEST_P(AlgoAgreementTest, AllSupportedAlgosMatchDirectReference) {
  const auto& [pc, type] = GetParam();
  const ConvProblem p(pc.x, pc.w, pc.geom);

  // Operand shapes per kernel type.
  const std::int64_t x_count = p.x.count();
  const std::int64_t y_count = p.y.count();
  const std::int64_t w_count = p.w.count();

  std::vector<float> x(static_cast<std::size_t>(x_count));
  std::vector<float> w(static_cast<std::size_t>(w_count));
  std::vector<float> dy(static_cast<std::size_t>(y_count));
  fill_random(x.data(), x_count, 11);
  fill_random(w.data(), w_count, 22);
  fill_random(dy.data(), y_count, 33);

  const float* a = nullptr;
  const float* b = nullptr;
  std::int64_t out_count = 0;
  int reference_algo = 0;
  switch (type) {
    case ConvKernelType::kForward:
      a = x.data(); b = w.data(); out_count = y_count;
      reference_algo = fwd_algo::kDirect;
      break;
    case ConvKernelType::kBackwardData:
      a = dy.data(); b = w.data(); out_count = x_count;
      reference_algo = bwd_data_algo::kAlgo0;
      break;
    case ConvKernelType::kBackwardFilter:
      a = x.data(); b = dy.data(); out_count = w_count;
      reference_algo = bwd_filter_algo::kAlgo0;
      break;
  }

  std::vector<float> reference(static_cast<std::size_t>(out_count), 0.0f);
  execute(type, reference_algo, p, a, b, reference.data(), 1.0f, 0.0f, nullptr,
          0);

  int tested = 0;
  for (int algo = 0; algo < algo_count(type); ++algo) {
    if (!algo_supported(type, algo, p)) continue;
    const std::size_t ws_bytes = algo_workspace(type, algo, p);
    AlignedBuffer<char> ws(ws_bytes);
    std::vector<float> out(static_cast<std::size_t>(out_count), 0.0f);
    execute(type, algo, p, a, b, out.data(), 1.0f, 0.0f, ws.data(), ws_bytes);
    const double err = max_rel_diff(out.data(), reference.data(), out_count);
    EXPECT_LT(err, 5e-3) << pc.name << " " << to_string(type) << " "
                         << algo_name(type, algo);
    ++tested;
  }
  // Strided/dilated BackwardData has only the two ALGO_* implementations;
  // everything else must offer at least three.
  EXPECT_GE(tested, 2) << "too few supported algorithms for " << pc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgoAgreementTest,
    ::testing::Combine(::testing::ValuesIn(test_problems()),
                       ::testing::Values(ConvKernelType::kForward,
                                         ConvKernelType::kBackwardData,
                                         ConvKernelType::kBackwardFilter)),
    [](const auto& info) {
      return std::get<0>(info.param).name +
             std::string(to_string(std::get<1>(info.param)));
    });

TEST(RegistryTest, AlgoCountsMirrorCudnn) {
  EXPECT_EQ(algo_count(ConvKernelType::kForward), 8);
  EXPECT_EQ(algo_count(ConvKernelType::kBackwardData), 6);
  EXPECT_EQ(algo_count(ConvKernelType::kBackwardFilter), 4);
}

TEST(RegistryTest, NamesAndRangeChecks) {
  EXPECT_EQ(algo_name(ConvKernelType::kForward, fwd_algo::kFftTiling),
            "FFT_TILING");
  EXPECT_EQ(algo_name(ConvKernelType::kBackwardFilter, bwd_filter_algo::kAlgo3),
            "ALGO_3");
  EXPECT_THROW(algo_name(ConvKernelType::kForward, 99), Error);
  EXPECT_THROW(algo_name(ConvKernelType::kForward, -1), Error);
}

TEST(RegistryTest, SupportRulesMatchCudnnRestrictions) {
  // Strided problem: FFT and Winograd families unsupported.
  const ConvProblem strided({1, 3, 11, 11}, {4, 3, 3, 3},
                            {.stride_h = 2, .stride_w = 2});
  EXPECT_FALSE(algo_supported(ConvKernelType::kForward, fwd_algo::kFft, strided));
  EXPECT_FALSE(
      algo_supported(ConvKernelType::kForward, fwd_algo::kWinograd, strided));
  EXPECT_TRUE(
      algo_supported(ConvKernelType::kForward, fwd_algo::kGemm, strided));

  // 5x5 kernel: Winograd F(2x2,3x3) unsupported, FFT fine.
  const ConvProblem k5({1, 3, 11, 11}, {4, 3, 5, 5}, {.pad_h = 2, .pad_w = 2});
  EXPECT_FALSE(
      algo_supported(ConvKernelType::kForward, fwd_algo::kWinograd, k5));
  EXPECT_TRUE(algo_supported(ConvKernelType::kForward, fwd_algo::kFft, k5));

  // Winograd backward-data needs pad <= 2.
  const ConvProblem bigpad({1, 2, 8, 8}, {3, 2, 3, 3}, {.pad_h = 3, .pad_w = 3});
  EXPECT_FALSE(algo_supported(ConvKernelType::kBackwardData,
                              bwd_data_algo::kWinograd, bigpad));
}

TEST(RegistryTest, WorkspaceQueriesThrowForUnsupported) {
  const ConvProblem strided({1, 3, 11, 11}, {4, 3, 3, 3},
                            {.stride_h = 2, .stride_w = 2});
  EXPECT_THROW(algo_workspace(ConvKernelType::kForward, fwd_algo::kFft, strided),
               Error);
}

TEST(RegistryTest, WorkspaceScalesAffinelyWithBatchForHeavyAlgos) {
  // ws(n) = constant (filter staging) + n * per-sample staging, with a
  // strictly positive per-sample term: the property micro-batching exploits.
  const ConvProblem p1({1, 8, 16, 16}, {8, 8, 3, 3}, {.pad_h = 1, .pad_w = 1});
  for (int algo : {fwd_algo::kGemm, fwd_algo::kFft, fwd_algo::kWinogradNonfused}) {
    const auto ws1 = algo_workspace(ConvKernelType::kForward, algo, p1);
    const auto ws2 = algo_workspace(ConvKernelType::kForward, algo,
                                    p1.with_batch(2));
    const auto ws4 = algo_workspace(ConvKernelType::kForward, algo,
                                    p1.with_batch(4));
    EXPECT_GT(ws2, ws1) << algo_name(ConvKernelType::kForward, algo);
    EXPECT_EQ(ws4 - ws2, 2 * (ws2 - ws1))
        << algo_name(ConvKernelType::kForward, algo);
  }
}

TEST(RegistryTest, BatchIndependentWorkspaceForLightAlgos) {
  const ConvProblem p1({1, 8, 16, 16}, {8, 8, 3, 3}, {.pad_h = 1, .pad_w = 1});
  const ConvProblem p8 = p1.with_batch(8);
  EXPECT_EQ(algo_workspace(ConvKernelType::kForward,
                           fwd_algo::kImplicitPrecompGemm, p1),
            algo_workspace(ConvKernelType::kForward,
                           fwd_algo::kImplicitPrecompGemm, p8));
  EXPECT_EQ(algo_workspace(ConvKernelType::kForward, fwd_algo::kImplicitGemm,
                           p8),
            0u);
  EXPECT_EQ(algo_workspace(ConvKernelType::kBackwardFilter,
                           bwd_filter_algo::kAlgo1, p1),
            algo_workspace(ConvKernelType::kBackwardFilter,
                           bwd_filter_algo::kAlgo1, p8));
}

TEST(RegistryTest, ExecuteRejectsTooSmallWorkspace) {
  const ConvProblem p({2, 4, 8, 8}, {4, 4, 3, 3}, {.pad_h = 1, .pad_w = 1});
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  std::vector<float> w(static_cast<std::size_t>(p.w.count()));
  std::vector<float> y(static_cast<std::size_t>(p.y.count()));
  const std::size_t required =
      algo_workspace(ConvKernelType::kForward, fwd_algo::kGemm, p);
  AlignedBuffer<char> ws(required);
  EXPECT_THROW(execute(ConvKernelType::kForward, fwd_algo::kGemm, p, x.data(),
                       w.data(), y.data(), 1.0f, 0.0f, ws.data(), required - 1),
               Error);
  EXPECT_NO_THROW(execute(ConvKernelType::kForward, fwd_algo::kGemm, p,
                          x.data(), w.data(), y.data(), 1.0f, 0.0f, ws.data(),
                          required));
}

TEST(RegistryTest, FlopModelsAreOrdered) {
  // Winograd should be modeled cheaper than direct for a 3x3 problem.
  const ConvProblem p({8, 64, 28, 28}, {64, 64, 3, 3}, {.pad_h = 1, .pad_w = 1});
  const double direct = algo_flops(ConvKernelType::kForward, fwd_algo::kDirect, p);
  const double wino =
      algo_flops(ConvKernelType::kForward, fwd_algo::kWinograd, p);
  EXPECT_LT(wino, direct);
  EXPECT_GT(wino, 0.25 * direct);  // but not absurdly cheaper
}

class AlphaBetaTest : public ::testing::TestWithParam<ConvKernelType> {};

TEST_P(AlphaBetaTest, ScalingContractHolds) {
  const ConvKernelType type = GetParam();
  const ConvProblem p({2, 3, 8, 8}, {4, 3, 3, 3}, {.pad_h = 1, .pad_w = 1});
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  std::vector<float> w(static_cast<std::size_t>(p.w.count()));
  std::vector<float> dy(static_cast<std::size_t>(p.y.count()));
  fill_random(x.data(), p.x.count(), 1);
  fill_random(w.data(), p.w.count(), 2);
  fill_random(dy.data(), p.y.count(), 3);

  const float* a = type == ConvKernelType::kBackwardData ? dy.data() : x.data();
  const float* b = type == ConvKernelType::kBackwardFilter ? dy.data() : w.data();
  const std::int64_t out_count = type == ConvKernelType::kForward ? p.y.count()
                                 : type == ConvKernelType::kBackwardData
                                     ? p.x.count()
                                     : p.w.count();

  for (int algo = 0; algo < algo_count(type); ++algo) {
    if (!algo_supported(type, algo, p)) continue;
    const std::size_t ws_bytes = algo_workspace(type, algo, p);
    AlignedBuffer<char> ws(ws_bytes);

    std::vector<float> base(static_cast<std::size_t>(out_count));
    fill_random(base.data(), out_count, 44);
    std::vector<float> pure(static_cast<std::size_t>(out_count), 0.0f);
    execute(type, algo, p, a, b, pure.data(), 1.0f, 0.0f, ws.data(), ws_bytes);

    // out = 2*op + 0.5*base must equal the hand-combined value.
    std::vector<float> out = base;
    execute(type, algo, p, a, b, out.data(), 2.0f, 0.5f, ws.data(), ws_bytes);
    std::vector<float> expected(static_cast<std::size_t>(out_count));
    for (std::int64_t i = 0; i < out_count; ++i) {
      expected[static_cast<std::size_t>(i)] =
          2.0f * pure[static_cast<std::size_t>(i)] +
          0.5f * base[static_cast<std::size_t>(i)];
    }
    EXPECT_LT(max_rel_diff(out.data(), expected.data(), out_count), 5e-3)
        << to_string(type) << " " << algo_name(type, algo);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernelTypes, AlphaBetaTest,
                         ::testing::Values(ConvKernelType::kForward,
                                           ConvKernelType::kBackwardData,
                                           ConvKernelType::kBackwardFilter));

TEST(MicroBatchSemanticsTest, ForwardSplitEqualsWhole) {
  // The core micro-batching property (paper §II): computing disjoint batch
  // slices sequentially gives the same output as one call.
  const ConvProblem p({8, 4, 10, 10}, {6, 4, 3, 3}, {.pad_h = 1, .pad_w = 1});
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  std::vector<float> w(static_cast<std::size_t>(p.w.count()));
  fill_random(x.data(), p.x.count(), 5);
  fill_random(w.data(), p.w.count(), 6);

  std::vector<float> whole(static_cast<std::size_t>(p.y.count()), 0.0f);
  const std::size_t ws_bytes =
      algo_workspace(ConvKernelType::kForward, fwd_algo::kGemm, p);
  AlignedBuffer<char> ws(ws_bytes);
  execute(ConvKernelType::kForward, fwd_algo::kGemm, p, x.data(), w.data(),
          whole.data(), 1.0f, 0.0f, ws.data(), ws_bytes);

  std::vector<float> split(static_cast<std::size_t>(p.y.count()), 0.0f);
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;
  std::int64_t offset = 0;
  for (std::int64_t micro : {3, 4, 1}) {
    const ConvProblem mp = p.with_batch(micro);
    // Different algorithm per micro-batch, like μ-cuDNN configurations.
    const int algo = offset == 0 ? fwd_algo::kFft : fwd_algo::kWinogradNonfused;
    const std::size_t mws = algo_workspace(ConvKernelType::kForward, algo, mp);
    AlignedBuffer<char> buf(mws);
    execute(ConvKernelType::kForward, algo, mp, x.data() + offset * image_x,
            w.data(), split.data() + offset * image_y, 1.0f, 0.0f, buf.data(),
            mws);
    offset += micro;
  }
  EXPECT_EQ(offset, p.x.n);
  EXPECT_LT(max_rel_diff(split.data(), whole.data(), p.y.count()), 5e-3);
}

TEST(MicroBatchSemanticsTest, BackwardFilterAccumulationEqualsWhole) {
  // BackwardFilter micro-batches must accumulate via beta=1 (paper §II).
  const ConvProblem p({6, 4, 10, 10}, {5, 4, 3, 3}, {.pad_h = 1, .pad_w = 1});
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  std::vector<float> dy(static_cast<std::size_t>(p.y.count()));
  fill_random(x.data(), p.x.count(), 7);
  fill_random(dy.data(), p.y.count(), 8);

  std::vector<float> whole(static_cast<std::size_t>(p.w.count()), 0.0f);
  const std::size_t ws_bytes =
      algo_workspace(ConvKernelType::kBackwardFilter, bwd_filter_algo::kAlgo3, p);
  AlignedBuffer<char> ws(ws_bytes);
  execute(ConvKernelType::kBackwardFilter, bwd_filter_algo::kAlgo3, p, x.data(),
          dy.data(), whole.data(), 1.0f, 0.0f, ws.data(), ws_bytes);

  std::vector<float> split(static_cast<std::size_t>(p.w.count()), 0.0f);
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;
  std::int64_t offset = 0;
  bool first = true;
  for (std::int64_t micro : {2, 3, 1}) {
    const ConvProblem mp = p.with_batch(micro);
    const int algo =
        first ? bwd_filter_algo::kAlgo1 : bwd_filter_algo::kFft;
    const std::size_t mws =
        algo_workspace(ConvKernelType::kBackwardFilter, algo, mp);
    AlignedBuffer<char> buf(mws);
    execute(ConvKernelType::kBackwardFilter, algo, mp,
            x.data() + offset * image_x, dy.data() + offset * image_y,
            split.data(), 1.0f, first ? 0.0f : 1.0f, buf.data(), mws);
    offset += micro;
    first = false;
  }
  EXPECT_EQ(offset, p.x.n);
  EXPECT_LT(max_rel_diff(split.data(), whole.data(), p.w.count()), 5e-3);
}

TEST(Im2colTest, RoundTripThroughCol2im) {
  // col2im(im2col(x)) multiplies each input element by the number of windows
  // covering it; for a 1x1 kernel with stride 1 that count is exactly 1.
  const ConvProblem p({1, 3, 6, 6}, {2, 3, 1, 1}, {});
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  fill_random(x.data(), p.x.count(), 9);
  std::vector<float> col(
      static_cast<std::size_t>(col_rows(p) * p.y.h * p.y.w));
  im2col(p, x.data(), col.data());
  std::vector<float> back(static_cast<std::size_t>(p.x.count()), 0.0f);
  col2im_accumulate(p, col.data(), back.data());
  EXPECT_LT(max_abs_diff(back.data(), x.data(), p.x.count()), 1e-6);
}

TEST(Im2colTest, IndexedMatchesPlain) {
  const ConvProblem p({1, 3, 9, 7}, {2, 3, 3, 3},
                      {.pad_h = 1, .pad_w = 2, .stride_h = 2, .stride_w = 1});
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  fill_random(x.data(), p.x.count(), 10);
  const std::size_t cells =
      static_cast<std::size_t>(col_rows(p) * p.y.h * p.y.w);
  std::vector<float> col_plain(cells), col_indexed(cells);
  im2col(p, x.data(), col_plain.data());
  std::vector<std::int32_t> indices(cells);
  build_gather_indices(p, indices.data());
  im2col_indexed(p, indices.data(), x.data(), col_indexed.data());
  EXPECT_EQ(max_abs_diff(col_plain.data(), col_indexed.data(),
                         static_cast<std::int64_t>(cells)),
            0.0);
}

TEST(Im2colTest, BatchedLayoutMatchesPerImage) {
  const ConvProblem p({3, 2, 6, 6}, {2, 2, 3, 3}, {.pad_h = 1, .pad_w = 1});
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  fill_random(x.data(), p.x.count(), 11);
  const std::int64_t rows = col_rows(p);
  const std::int64_t plane = p.y.h * p.y.w;
  const std::int64_t total = p.x.n * plane;
  std::vector<float> batched(static_cast<std::size_t>(rows * total));
  im2col_batched(p, x.data(), batched.data());
  std::vector<float> single(static_cast<std::size_t>(rows * plane));
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  for (std::int64_t n = 0; n < p.x.n; ++n) {
    im2col(p, x.data() + n * image_x, single.data());
    for (std::int64_t row = 0; row < rows; ++row) {
      for (std::int64_t q = 0; q < plane; ++q) {
        EXPECT_EQ(batched[static_cast<std::size_t>(row * total + n * plane + q)],
                  single[static_cast<std::size_t>(row * plane + q)])
            << "n=" << n << " row=" << row << " q=" << q;
      }
    }
  }
}

}  // namespace
}  // namespace ucudnn::kernels
