// Planner/plan/executor layer tests.
//
// The equivalence suites prefill the benchmark cache with synthetic perf
// tables whose winners (fwd GEMM, bwd-data ALGO_1, bwd-filter ALGO_1) are
// division-invariant — each output element is accumulated in an order
// independent of the micro-batch division — so a micro-batched ExecutionPlan
// must reproduce the single-shot mcudnn result bitwise, under WR, shared-WR
// and WD bindings alike. Stored workspace sizes are synthetically linear in
// the micro-batch (and at least the real requirement) so a workspace limit
// of mem(4) deterministically forces the [4, 4] winner division.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/plan.h"
#include "core/ucudnn.h"
#include "kernels/registry.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

constexpr ConvKernelType kAllTypes[] = {ConvKernelType::kForward,
                                        ConvKernelType::kBackwardFilter,
                                        ConvKernelType::kBackwardData};

kernels::ConvProblem test_problem() {
  return kernels::ConvProblem({8, 8, 12, 12}, {8, 8, 3, 3},
                              {.pad_h = 1, .pad_w = 1});
}

int winner_algo(ConvKernelType type) {
  switch (type) {
    case ConvKernelType::kForward: return kernels::fwd_algo::kGemm;
    case ConvKernelType::kBackwardData: return kernels::bwd_data_algo::kAlgo1;
    case ConvKernelType::kBackwardFilter:
      return kernels::bwd_filter_algo::kAlgo1;
  }
  return -1;
}

int fallback_algo(ConvKernelType type) {
  switch (type) {
    case ConvKernelType::kForward: return kernels::fwd_algo::kDirect;
    case ConvKernelType::kBackwardData: return kernels::bwd_data_algo::kAlgo0;
    case ConvKernelType::kBackwardFilter:
      return kernels::bwd_filter_algo::kAlgo0;
  }
  return -1;
}

std::size_t winner_full_workspace(ConvKernelType type,
                                  const kernels::ConvProblem& problem) {
  return kernels::algo_workspace(type, winner_algo(type), problem);
}

/// Per-kernel limit that admits the [4, 4] winner division but not the
/// undivided winner (stored memory is `size * winner_full_workspace`).
std::size_t forcing_limit(ConvKernelType type,
                          const kernels::ConvProblem& problem) {
  return 4 * winner_full_workspace(type, problem);
}

/// Stores deterministic perf tables for every powerOfTwo micro-batch size of
/// `problem`: the division-invariant winner (fast, workspace linear in the
/// micro-batch) and a zero-workspace fallback (100x slower).
void prefill_plans(core::UcudnnHandle& handle, ConvKernelType type,
                   const kernels::ConvProblem& problem) {
  const std::string& device_name = handle.device().spec().name;
  const std::size_t full_ws = winner_full_workspace(type, problem);
  for (const std::int64_t size : core::candidate_micro_sizes(
           core::BatchSizePolicy::kPowerOfTwo, problem.batch())) {
    std::vector<mcudnn::AlgoPerf> perfs(2);
    perfs[0].algo = winner_algo(type);
    perfs[0].status = Status::kSuccess;
    perfs[0].time_ms = 1.0 + 0.01 * static_cast<double>(size);
    perfs[0].memory = static_cast<std::size_t>(size) * full_ws;
    perfs[1].algo = fallback_algo(type);
    perfs[1].status = Status::kSuccess;
    perfs[1].time_ms = 100.0 + 0.01 * static_cast<double>(size);
    perfs[1].memory = 0;
    handle.cache()->store(device_name, type, problem, size, perfs);
  }
}

struct OperandCounts {
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t out = 0;
};

OperandCounts counts_for(ConvKernelType type, const kernels::ConvProblem& p) {
  switch (type) {
    case ConvKernelType::kForward:
      return {p.x.count(), p.w.count(), p.y.count()};
    case ConvKernelType::kBackwardData:
      return {p.y.count(), p.w.count(), p.x.count()};
    case ConvKernelType::kBackwardFilter:
      return {p.x.count(), p.y.count(), p.w.count()};
  }
  return {};
}

struct Operands {
  std::vector<float> a;
  std::vector<float> b;
  std::vector<float> out;
};

Operands make_operands(ConvKernelType type, const kernels::ConvProblem& p,
                       std::uint64_t seed) {
  const OperandCounts c = counts_for(type, p);
  Operands ops;
  ops.a.resize(static_cast<std::size_t>(c.a));
  ops.b.resize(static_cast<std::size_t>(c.b));
  ops.out.assign(static_cast<std::size_t>(c.out), 0.0f);
  fill_random(ops.a.data(), c.a, seed + 1);
  fill_random(ops.b.data(), c.b, seed + 2);
  return ops;
}

/// Reference: the undivided convolution straight through mcudnn.
std::vector<float> single_shot(core::UcudnnHandle& handle, ConvKernelType type,
                               const kernels::ConvProblem& p, int algo,
                               const Operands& ops) {
  std::vector<float> out(ops.out.size(), 0.0f);
  const std::size_t ws_bytes = kernels::algo_workspace(type, algo, p);
  std::vector<unsigned char> ws(ws_bytes);
  mcudnn::convolution(handle.base(), type, p, 1.0f, ops.a.data(), ops.b.data(),
                      0.0f, out.data(), algo,
                      ws_bytes == 0 ? nullptr : ws.data(), ws_bytes);
  return out;
}

void expect_bitwise(const std::vector<float>& got,
                    const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(
      std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0)
      << "outputs differ bitwise";
}

void expect_winner_division(const core::Configuration* config,
                            ConvKernelType type) {
  ASSERT_NE(config, nullptr);
  ASSERT_EQ(config->micro.size(), 2u);
  for (const core::MicroConfig& m : config->micro) {
    EXPECT_EQ(m.algo, winner_algo(type));
    EXPECT_EQ(m.batch, 4);
  }
}

class PlanTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().configure(""); }
};

// -------------------------------------------------------------- plan IR

TEST_F(PlanTest, OperandStridesMatchTheKernelSlicing) {
  const kernels::ConvProblem p = test_problem();
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;

  const core::OperandStrides fwd =
      core::operand_strides(ConvKernelType::kForward, p);
  EXPECT_EQ(fwd.a, image_x);
  EXPECT_EQ(fwd.b, 0);
  EXPECT_EQ(fwd.out, image_y);

  const core::OperandStrides bwd_data =
      core::operand_strides(ConvKernelType::kBackwardData, p);
  EXPECT_EQ(bwd_data.a, image_y);
  EXPECT_EQ(bwd_data.b, 0);
  EXPECT_EQ(bwd_data.out, image_x);

  const core::OperandStrides bwd_filter =
      core::operand_strides(ConvKernelType::kBackwardFilter, p);
  EXPECT_EQ(bwd_filter.a, image_x);
  EXPECT_EQ(bwd_filter.b, image_y);
  EXPECT_EQ(bwd_filter.out, 0);  // dw accumulates in place
}

TEST_F(PlanTest, BuildPlanLowersOffsetsAndAccumulationFlags) {
  const kernels::ConvProblem p = test_problem();
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;

  core::Configuration config;
  config.append({/*algo=*/1, /*batch=*/3, /*time_ms=*/1.0, /*workspace=*/64});
  config.append({/*algo=*/2, /*batch=*/5, /*time_ms=*/2.0, /*workspace=*/32});

  const core::ExecutionPlan plan =
      core::build_plan(ConvKernelType::kBackwardFilter, p, config,
                       {core::WorkspaceKind::kPerKernel, 0, 64});
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_EQ(plan.segments[0].a_offset, 0);
  EXPECT_EQ(plan.segments[0].b_offset, 0);
  EXPECT_EQ(plan.segments[0].out_offset, 0);
  EXPECT_FALSE(plan.segments[0].accumulate);
  EXPECT_EQ(plan.segments[1].a_offset, 3 * image_x);
  EXPECT_EQ(plan.segments[1].b_offset, 3 * image_y);
  EXPECT_EQ(plan.segments[1].out_offset, 0);
  EXPECT_TRUE(plan.segments[1].accumulate);  // BackwardFilter tail segments
  EXPECT_EQ(plan.workspace, 64u);
  EXPECT_EQ(plan.batch(), 8);

  // Forward never sets the accumulation flag.
  const core::ExecutionPlan fwd =
      core::build_plan(ConvKernelType::kForward, p, config,
                       {core::WorkspaceKind::kNone, 0, 0});
  EXPECT_FALSE(fwd.segments[0].accumulate);
  EXPECT_FALSE(fwd.segments[1].accumulate);
  EXPECT_EQ(fwd.segments[1].a_offset, 3 * image_x);
  EXPECT_EQ(fwd.segments[1].out_offset, 3 * image_y);

  // A configuration that does not cover the mini-batch is an internal error.
  core::Configuration short_config;
  short_config.append({1, 3, 1.0, 0});
  try {
    core::build_plan(ConvKernelType::kForward, p, short_config,
                     {core::WorkspaceKind::kNone, 0, 0});
    FAIL() << "expected kInternalError for a non-covering configuration";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInternalError);
  }
}

TEST_F(PlanTest, BuildTailSegmentsContinueFromTheExecutedPrefix) {
  const kernels::ConvProblem p = test_problem();
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;

  core::Configuration tail;
  tail.append({/*algo=*/0, /*batch=*/2, /*time_ms=*/1.0, /*workspace=*/0});
  tail.append({/*algo=*/0, /*batch=*/2, /*time_ms=*/1.0, /*workspace=*/0});

  const auto segments = core::build_tail_segments(
      ConvKernelType::kBackwardFilter, p, tail, /*done=*/4);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].a_offset, 4 * image_x);
  EXPECT_EQ(segments[1].a_offset, 6 * image_x);
  // Both continue a partial accumulation: beta must stay 1 across the splice.
  EXPECT_TRUE(segments[0].accumulate);
  EXPECT_TRUE(segments[1].accumulate);

  try {
    core::build_tail_segments(ConvKernelType::kBackwardFilter, p, tail,
                              /*done=*/2);
    FAIL() << "expected kInternalError for a tail that misses the remainder";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInternalError);
  }
}

TEST_F(PlanTest, PlanToStringNamesSegmentsAndBinding) {
  const kernels::ConvProblem p = test_problem();
  core::Configuration config;
  config.append({2, 4, 1.0, 128});
  config.append({2, 4, 1.0, 128});
  const core::ExecutionPlan plan =
      core::build_plan(ConvKernelType::kBackwardFilter, p, config,
                       {core::WorkspaceKind::kWdArena, 512, 128});
  const std::string text = plan.to_string();
  EXPECT_NE(text.find("BackwardFilter"), std::string::npos);
  EXPECT_NE(text.find("4:algo2"), std::string::npos);
  EXPECT_NE(text.find("(acc)"), std::string::npos);
  EXPECT_NE(text.find("wdArena+512"), std::string::npos);
}

// ----------------------------------------------------- plan equivalence

TEST_F(PlanTest, WrPlanBitwiseEqualsSingleShotForAllKernelTypes) {
  for (const ConvKernelType type : kAllTypes) {
    const kernels::ConvProblem p = test_problem();
    core::Options opts;
    opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
    opts.workspace_limit = forcing_limit(type, p);
    core::UcudnnHandle handle(
        std::make_shared<device::Device>(device::host_cpu_spec()), opts);
    prefill_plans(handle, type, p);

    const Operands ops = make_operands(type, p, 17 * static_cast<int>(type));
    std::vector<float> out = ops.out;
    handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                       out.data());
    expect_winner_division(handle.configuration_for(type, p), type);
    expect_bitwise(out, single_shot(handle, type, p, winner_algo(type), ops));
  }
}

TEST_F(PlanTest, SharedWrPlanBitwiseEqualsSingleShotForAllKernelTypes) {
  for (const ConvKernelType type : kAllTypes) {
    const kernels::ConvProblem p = test_problem();
    core::Options opts;
    opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
    opts.workspace_limit = forcing_limit(type, p);
    opts.share_wr_workspace = true;
    auto dev = std::make_shared<device::Device>(device::host_cpu_spec());
    core::UcudnnHandle handle(dev, opts);
    prefill_plans(handle, type, p);

    const Operands ops = make_operands(type, p, 23 * static_cast<int>(type));
    std::vector<float> out = ops.out;
    handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                       out.data());
    expect_winner_division(handle.configuration_for(type, p), type);
    // The workspace went into the single shared buffer, not a per-kernel one.
    EXPECT_GT(dev->usage_by_tag().at("shared:ws"), 0u);
    expect_bitwise(out, single_shot(handle, type, p, winner_algo(type), ops));
  }
}

TEST_F(PlanTest, WdPlanBitwiseEqualsSingleShotForAllKernelTypes) {
  const kernels::ConvProblem p = test_problem();
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_policy = core::WorkspacePolicy::kWD;
  opts.total_workspace_size = 0;
  for (const ConvKernelType type : kAllTypes) {
    opts.total_workspace_size += forcing_limit(type, p);
  }
  auto dev = std::make_shared<device::Device>(device::host_cpu_spec());
  core::UcudnnHandle handle(dev, opts);
  for (const ConvKernelType type : kAllTypes) {
    prefill_plans(handle, type, p);
    handle.get_algorithm(type, p, mcudnn::AlgoPreference::kPreferFastest, 0);
  }
  handle.finalize_wd();
  ASSERT_TRUE(handle.wd_finalized());
  EXPECT_GT(dev->usage_by_tag().at("wd_arena"), 0u);

  for (const ConvKernelType type : kAllTypes) {
    // The arena admits exactly the [4, 4] winner division for every kernel.
    expect_winner_division(handle.configuration_for(type, p), type);
    const Operands ops = make_operands(type, p, 29 * static_cast<int>(type));
    std::vector<float> out = ops.out;
    handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                       out.data());
    expect_bitwise(out, single_shot(handle, type, p, winner_algo(type), ops));
  }
}

// ------------------------------------------------- mid-plan replan splice

TEST_F(PlanTest, MidPlanReplanSplicesTailPreservingAccumulation) {
  const ConvKernelType type = ConvKernelType::kBackwardFilter;
  const kernels::ConvProblem p = test_problem();
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = forcing_limit(type, p);
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), opts);
  prefill_plans(handle, type, p);
  // The tail re-plan benchmarks the remaining 4 samples as a problem in its
  // own right; prefill that table too so the test stays deterministic.
  prefill_plans(handle, type, p.with_batch(4));

  // Plan is [4(winner), 4(winner)]. The first launch succeeds; the second
  // segment fails its initial launch plus all 3 retries, so the winner is
  // blacklisted and the remaining 4 samples re-planned onto the fallback.
  const Operands ops = make_operands(type, p, 101);
  std::vector<float> out = ops.out;
  FaultInjector::instance().configure("kernel:after=1,every=1,count=4");
  handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                     out.data());
  FaultInjector::instance().configure("");

  const core::DegradationStats& stats = handle.degradation_stats();
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.blacklisted_algorithms, 1u);
  EXPECT_EQ(handle.plan_cache().epoch(), 1u);
  // The re-benchmark of the tail is charged to the replan counter, not lost.
  EXPECT_GT(handle.total_replan_benchmark_ms(), 0.0);

  // Reference: winner on images [0, 4) seeding dw (beta = 0), fallback on
  // images [4, 8) continuing the accumulation (beta = 1) — the exact
  // spliced schedule, straight through mcudnn.
  const core::OperandStrides strides = core::operand_strides(type, p);
  const kernels::ConvProblem half = p.with_batch(4);
  std::vector<float> want(ops.out.size(), 0.0f);
  {
    const std::size_t ws_bytes =
        kernels::algo_workspace(type, winner_algo(type), half);
    std::vector<unsigned char> ws(ws_bytes);
    mcudnn::convolution(handle.base(), type, half, 1.0f, ops.a.data(),
                        ops.b.data(), 0.0f, want.data(), winner_algo(type),
                        ws.data(), ws_bytes);
    mcudnn::convolution(handle.base(), type, half, 1.0f,
                        ops.a.data() + 4 * strides.a,
                        ops.b.data() + 4 * strides.b, 1.0f, want.data(),
                        fallback_algo(type), nullptr, 0);
  }
  expect_bitwise(out, want);

  // The next convolution drops the stale WR entry, re-plans without the
  // blacklisted winner, and still matches the all-fallback single shot.
  const Operands ops2 = make_operands(type, p, 202);
  std::vector<float> out2 = ops2.out;
  handle.convolution(type, p, 1.0f, ops2.a.data(), ops2.b.data(), 0.0f,
                     out2.data());
  const core::Configuration* config = handle.configuration_for(type, p);
  ASSERT_NE(config, nullptr);
  for (const core::MicroConfig& m : config->micro) {
    EXPECT_EQ(m.algo, fallback_algo(type));
  }
  expect_bitwise(out2, single_shot(handle, type, p, fallback_algo(type), ops2));
}

// ------------------------------------------------------------ plan cache

TEST_F(PlanTest, SteadyStateConvolutionIsAPlanCacheHit) {
  const ConvKernelType type = ConvKernelType::kForward;
  const kernels::ConvProblem p = test_problem();
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = forcing_limit(type, p);
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), opts);
  prefill_plans(handle, type, p);

  const Operands ops = make_operands(type, p, 301);
  std::vector<float> out = ops.out;
  handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                     out.data());
  EXPECT_EQ(handle.plan_cache().misses(), 1u);
  EXPECT_EQ(handle.plan_cache().hits(), 0u);
  EXPECT_EQ(handle.plan_cache().size(), 1u);

  handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                     out.data());
  EXPECT_EQ(handle.plan_cache().misses(), 1u);
  EXPECT_EQ(handle.plan_cache().hits(), 1u);
  EXPECT_EQ(handle.plan_cache().size(), 1u);
  EXPECT_EQ(handle.plan_cache().epoch(), 0u);
}

TEST_F(PlanTest, BlacklistEventBumpsTheEpochAndInvalidatesCachedPlans) {
  const ConvKernelType type = ConvKernelType::kForward;
  const kernels::ConvProblem p = test_problem();
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = forcing_limit(type, p);
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), opts);
  prefill_plans(handle, type, p);
  prefill_plans(handle, type, p.with_batch(4));

  const Operands ops = make_operands(type, p, 401);
  std::vector<float> out = ops.out;
  // First call: plans [4, 4] winner and fails over to the fallback mid-plan.
  FaultInjector::instance().configure("kernel:after=1,every=1,count=4");
  handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                     out.data());
  FaultInjector::instance().configure("");
  EXPECT_EQ(handle.plan_cache().epoch(), 1u);
  EXPECT_EQ(handle.plan_cache().size(), 0u);  // old epoch's plans dropped
  EXPECT_EQ(handle.plan_cache().misses(), 1u);

  // Next call re-plans under the new epoch (miss), the one after hits.
  handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                     out.data());
  EXPECT_EQ(handle.plan_cache().misses(), 2u);
  EXPECT_EQ(handle.plan_cache().hits(), 0u);
  handle.convolution(type, p, 1.0f, ops.a.data(), ops.b.data(), 0.0f,
                     out.data());
  EXPECT_EQ(handle.plan_cache().misses(), 2u);
  EXPECT_EQ(handle.plan_cache().hits(), 1u);
}

// ----------------------------------------- WD unrecorded-kernel fallback

TEST_F(PlanTest, WdUnrecordedKernelFallbackIsCountedPerOccurrence) {
  const kernels::ConvProblem recorded = test_problem();
  const kernels::ConvProblem unrecorded({8, 3, 12, 12}, {8, 3, 3, 3},
                                        {.pad_h = 1, .pad_w = 1});
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_policy = core::WorkspacePolicy::kWD;
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), opts);
  prefill_plans(handle, ConvKernelType::kForward, recorded);
  prefill_plans(handle, ConvKernelType::kForward, unrecorded);
  handle.get_algorithm(ConvKernelType::kForward, recorded,
                       mcudnn::AlgoPreference::kPreferFastest, 0);
  handle.finalize_wd();
  ASSERT_TRUE(handle.wd_finalized());

  // A kernel the WD plan never saw falls back to WR — counted every time
  // (the log warns only once), and still executes correctly.
  const Operands ops =
      make_operands(ConvKernelType::kForward, unrecorded, 501);
  std::vector<float> out = ops.out;
  handle.convolution(ConvKernelType::kForward, unrecorded, 1.0f, ops.a.data(),
                     ops.b.data(), 0.0f, out.data());
  EXPECT_EQ(handle.degradation_stats().wd_unrecorded_fallbacks, 1u);
  handle.convolution(ConvKernelType::kForward, unrecorded, 1.0f, ops.a.data(),
                     ops.b.data(), 0.0f, out.data());
  EXPECT_EQ(handle.degradation_stats().wd_unrecorded_fallbacks, 2u);
  EXPECT_TRUE(handle.degradation_stats().any());
}

}  // namespace
}  // namespace ucudnn
