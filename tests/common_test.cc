// Unit tests for src/common: status machinery, env parsing, math helpers,
// aligned buffers, and the thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/env.h"
#include "common/mathutil.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace ucudnn {
namespace {

TEST(StatusTest, ToStringCoversAllCodes) {
  EXPECT_EQ(to_string(Status::kSuccess), "UCUDNN_STATUS_SUCCESS");
  EXPECT_EQ(to_string(Status::kBadParam), "UCUDNN_STATUS_BAD_PARAM");
  EXPECT_EQ(to_string(Status::kNotSupported), "UCUDNN_STATUS_NOT_SUPPORTED");
  EXPECT_EQ(to_string(Status::kAllocFailed), "UCUDNN_STATUS_ALLOC_FAILED");
}

TEST(StatusTest, ErrorCarriesStatusAndMessage) {
  const Error error(Status::kBadParam, "something");
  EXPECT_EQ(error.status(), Status::kBadParam);
  EXPECT_NE(std::string(error.what()).find("something"), std::string::npos);
  EXPECT_NE(std::string(error.what()).find("BAD_PARAM"), std::string::npos);
}

TEST(StatusTest, CheckThrowsOnlyWhenFalse) {
  EXPECT_NO_THROW(check_param(true, "ok"));
  EXPECT_THROW(check_param(false, "bad"), Error);
}

TEST(StatusTest, ApiBodyTranslatesExceptions) {
  auto api = [](bool fail) -> Status {
    UCUDNN_API_BODY({
      if (fail) throw Error(Status::kNotSupported, "nope");
    });
  };
  EXPECT_EQ(api(false), Status::kSuccess);
  EXPECT_EQ(api(true), Status::kNotSupported);
}

TEST(EnvTest, StringFallback) {
  ::unsetenv("UCUDNN_TEST_STR");
  EXPECT_EQ(env_string("UCUDNN_TEST_STR", "dflt"), "dflt");
  ::setenv("UCUDNN_TEST_STR", "value", 1);
  EXPECT_EQ(env_string("UCUDNN_TEST_STR", "dflt"), "value");
  ::unsetenv("UCUDNN_TEST_STR");
}

TEST(EnvTest, IntParsing) {
  ::setenv("UCUDNN_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("UCUDNN_TEST_INT", 7), 42);
  ::setenv("UCUDNN_TEST_INT", "4x", 1);
  EXPECT_THROW(env_int("UCUDNN_TEST_INT", 7), Error);
  ::unsetenv("UCUDNN_TEST_INT");
  EXPECT_EQ(env_int("UCUDNN_TEST_INT", 7), 7);
}

TEST(EnvTest, ByteSuffixes) {
  EXPECT_EQ(parse_bytes("123"), 123u);
  EXPECT_EQ(parse_bytes("8K"), 8u << 10);
  EXPECT_EQ(parse_bytes("64M"), std::size_t{64} << 20);
  EXPECT_EQ(parse_bytes("2G"), std::size_t{2} << 30);
  EXPECT_EQ(parse_bytes("2g"), std::size_t{2} << 30);
  EXPECT_THROW(parse_bytes("x"), Error);
  EXPECT_THROW(parse_bytes("1T"), Error);
  EXPECT_THROW(parse_bytes("1MM"), Error);
}

TEST(EnvTest, BoolParsing) {
  ::setenv("UCUDNN_TEST_BOOL", "yes", 1);
  EXPECT_TRUE(env_bool("UCUDNN_TEST_BOOL", false));
  ::setenv("UCUDNN_TEST_BOOL", "0", 1);
  EXPECT_FALSE(env_bool("UCUDNN_TEST_BOOL", true));
  ::setenv("UCUDNN_TEST_BOOL", "maybe", 1);
  EXPECT_THROW(env_bool("UCUDNN_TEST_BOOL", true), Error);
  ::unsetenv("UCUDNN_TEST_BOOL");
}

TEST(MathTest, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(std::int64_t{1}, std::int64_t{256}), 1);
  EXPECT_EQ(round_up(10, 8), 16);
  EXPECT_EQ(round_up(16, 8), 16);
}

TEST(MathTest, PowersOfTwo) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(31), 32u);
  EXPECT_EQ(next_pow2(33), 64u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(255), 7);
  EXPECT_EQ(ilog2(256), 8);
}

TEST(AlignedBufferTest, AlignmentAndZeroing) {
  AlignedBuffer<float> buffer(1000, /*zeroed=*/true);
  EXPECT_EQ(buffer.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % kBufferAlignment,
            0u);
  for (std::size_t i = 0; i < buffer.size(); ++i) EXPECT_EQ(buffer[i], 0.0f);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<int> a(16, true);
  a[3] = 99;
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.size(), 16u);
  EXPECT_EQ(b[3], 99);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): checking state
  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c[3], 99);
}

TEST(AlignedBufferTest, EmptyBufferIsSafe) {
  AlignedBuffer<double> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
  EXPECT_EQ(empty.bytes(), 0u);
}

TEST(AlignedBufferTest, BytesReportsContentSize) {
  AlignedBuffer<float> floats(17);
  EXPECT_EQ(floats.bytes(), 17 * sizeof(float));
  AlignedBuffer<char> chars(100);
  EXPECT_EQ(chars.bytes(), 100u);
}

TEST(AlignedBufferTest, ZeroingCoversOddCountsExactly) {
  // 1001 floats: the memset fast path must zero the full content (and a
  // partially-poisoned allocation must not leak through).
  AlignedBuffer<std::uint8_t> probe(1001 * sizeof(float), true);
  for (std::size_t i = 0; i < probe.size(); ++i) EXPECT_EQ(probe[i], 0u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t begin, std::int64_t end,
                              std::size_t) {
    for (std::int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::int64_t begin, std::int64_t,
                                    std::size_t) {
                                   if (begin >= 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, EmptyAndSmallRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  pool.parallel_for(1, [&](std::int64_t begin, std::int64_t end, std::size_t) {
    sum += static_cast<int>(end - begin);
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  std::atomic<std::int64_t> total{0};
  ThreadPool::global().parallel_for(8, [&](std::int64_t b, std::int64_t e,
                                           std::size_t) {
    for (std::int64_t i = b; i < e; ++i) {
      ThreadPool::global().parallel_for(
          16, [&](std::int64_t bb, std::int64_t ee, std::size_t) {
            total += ee - bb;
          });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, ParallelForEachHelper) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_each(257, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForStateLifetimeStress) {
  // Regression (TSan target): the completion notification used to decrement
  // `remaining` before locking `done_mutex`; a spuriously woken waiter could
  // observe zero, return, and destroy the stack-local State while the last
  // worker was still about to lock it. Churn through many short parallel_for
  // calls — each constructs and destroys a State — from several caller
  // threads so the destroy/notify window is hit as often as possible.
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  constexpr int kCallers = 4;
  constexpr int kIterations = 500;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int iter = 0; iter < kIterations; ++iter) {
        pool.parallel_for(
            16,
            [&](std::int64_t begin, std::int64_t end, std::size_t) {
              total.fetch_add(end - begin);
            },
            /*min_chunk=*/1);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), std::int64_t{kCallers} * kIterations * 16);
}

TEST(ThreadPoolTest, MinChunkLimitsSplitGranularity) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      100,
      [&](std::int64_t, std::int64_t, std::size_t) { chunks.fetch_add(1); },
      /*min_chunk=*/100);
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPoolTest, CallerThreadExecutesChunks) {
  // Regression: the caller used to block idle on the completion condvar
  // while workers ran every chunk. Park all four workers on a gate first —
  // with no worker free, only caller participation can finish the loop.
  ThreadPool pool(4);
  Mutex gate_mutex{"test.gate"};
  CondVar gate_cv;
  bool gate_open = false;
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      MutexLock lock(gate_mutex);
      while (!gate_open) gate_cv.wait(gate_mutex);
    });
  }

  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> chunk_tids(4);
  pool.parallel_for(
      100,
      [&](std::int64_t, std::int64_t, std::size_t chunk) {
        chunk_tids[chunk] = std::this_thread::get_id();
      },
      /*min_chunk=*/25);

  {
    MutexLock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();

  EXPECT_TRUE(std::count(chunk_tids.begin(), chunk_tids.end(), caller) > 0);
  // With every worker parked the caller must in fact have run all chunks.
  for (const auto& tid : chunk_tids) EXPECT_EQ(tid, caller);
}

// Temporarily sets (or unsets, when value == nullptr) an environment
// variable, restoring the previous state on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(ThreadPoolTest, NumThreadsFromEnvRejectsInvalidValues) {
  const std::size_t fallback = [] {
    ScopedEnv unset("UCUDNN_NUM_THREADS", nullptr);
    return ThreadPool::num_threads_from_env();
  }();
  EXPECT_GE(fallback, 1u);

  // Regression: a negative value cast straight to std::size_t wrapped to
  // ~2^64 and the pool constructor tried to spawn that many workers. All
  // invalid spellings must fall back instead of wrapping or throwing.
  for (const char* bad : {"0", "-1", "-99999999999999999999", "garbage", "",
                          "2x", "  "}) {
    ScopedEnv env("UCUDNN_NUM_THREADS", bad);
    EXPECT_EQ(ThreadPool::num_threads_from_env(), fallback)
        << "UCUDNN_NUM_THREADS=" << bad;
  }

  {
    ScopedEnv env("UCUDNN_NUM_THREADS", "3");
    EXPECT_EQ(ThreadPool::num_threads_from_env(), 3u);
  }
  {
    ScopedEnv env("UCUDNN_NUM_THREADS", "1000000");
    EXPECT_EQ(ThreadPool::num_threads_from_env(),
              static_cast<std::size_t>(ThreadPool::kMaxThreads));
  }
}

}  // namespace
}  // namespace ucudnn
