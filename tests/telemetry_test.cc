// Unit tests for the telemetry leaf: metric handle semantics, histogram
// bucketing, snapshot/reset behavior, span nesting, and the disabled-mode
// zero-allocation guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "json_validator.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

// Global allocation counter for the zero-allocation test. Replacing the
// global operator new in one translation unit covers the whole test binary.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// The replacement operator new above is malloc-based, so free() here is the
// matching deallocator; GCC cannot see that pairing and warns spuriously.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace ucudnn::telemetry {
namespace {

TEST(MetricsTest, CounterAccumulatesAndSharesCellsByName) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  Counter a = registry.counter("test.counter.shared");
  Counter b = registry.counter("test.counter.shared");
  const std::uint64_t base = a.value();
  a.add();
  a.add(4);
  b.add(2);
  EXPECT_EQ(a.value(), base + 7);
  EXPECT_EQ(b.value(), base + 7);  // same name, same cell
}

TEST(MetricsTest, DoubleCounterAndGauge) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  DoubleCounter d = registry.double_counter("test.double");
  const double base = d.value();
  d.add(1.5);
  d.add(2.25);
  EXPECT_DOUBLE_EQ(d.value(), base + 3.75);

  Gauge g = registry.gauge("test.gauge");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-2);
  EXPECT_EQ(g.value(), 40);
  g.set(7);
  EXPECT_EQ(g.value(), 7);  // last writer wins
}

TEST(MetricsTest, DefaultConstructedHandlesAreInertNoOps) {
  Counter c;
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  DoubleCounter d;
  d.add(1.0);
  EXPECT_DOUBLE_EQ(d.value(), 0.0);
  Gauge g;
  g.set(3);
  EXPECT_EQ(g.value(), 0);
  Histogram h;
  h.observe_ms(1.0);
  EXPECT_EQ(h.data().count, 0u);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Decade buckets: bucket i counts observations <= 1e-3 * 10^i ms.
  EXPECT_DOUBLE_EQ(histogram_bucket_upper_ms(0), 1e-3);
  EXPECT_DOUBLE_EQ(histogram_bucket_upper_ms(3), 1.0);
  EXPECT_DOUBLE_EQ(histogram_bucket_upper_ms(kHistogramBuckets - 2), 1e4);
  EXPECT_TRUE(std::isinf(histogram_bucket_upper_ms(kHistogramBuckets - 1)));

  MetricsRegistry& registry = MetricsRegistry::instance();
  Histogram h = registry.histogram("test.histogram.buckets");
  h.observe_ms(1e-3);  // exactly on the first bound -> bucket 0
  h.observe_ms(0.5);   // (0.1, 1] -> bucket 3
  h.observe_ms(2e4);   // beyond the last finite bound -> overflow bucket
  const HistogramData data = h.data();
  EXPECT_EQ(data.buckets[0], 1u);
  EXPECT_EQ(data.buckets[3], 1u);
  EXPECT_EQ(data.buckets[kHistogramBuckets - 1], 1u);
  EXPECT_EQ(data.count, 3u);
  EXPECT_DOUBLE_EQ(data.sum_ms, 1e-3 + 0.5 + 2e4);
}

TEST(MetricsTest, PercentilesInterpolateWithinOneBucket) {
  // A single observation in bucket 3 (bounds (0.1, 1.0]): the estimator
  // interpolates linearly across the bucket, so pXX lands at
  // lower + (upper - lower) * q.
  HistogramData data;
  data.buckets[3] = 1;
  data.count = 1;
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(data, 0.50), 0.1 + 0.9 * 0.50);
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(data, 0.95), 0.1 + 0.9 * 0.95);
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(data, 0.99), 0.1 + 0.9 * 0.99);
  // q=0 pins to the bucket's lower bound, q=1 to its upper bound.
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(data, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(data, 1.0), 1.0);
}

TEST(MetricsTest, PercentilesCrossBucketsAtTheRightRank) {
  // 9 fast observations in bucket 0 ((0, 0.001]) and 1 slow one in bucket 3
  // ((0.1, 1.0]), count = 10. p50 (rank 5) stays inside bucket 0 at 5/9 of
  // its width; p95 (rank 9.5) and p99 (rank 9.9) fall into the slow bucket.
  HistogramData data;
  data.buckets[0] = 9;
  data.buckets[3] = 1;
  data.count = 10;
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(data, 0.50), 1e-3 * (5.0 / 9.0));
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(data, 0.95), 0.1 + 0.9 * 0.5);
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(data, 0.99), 0.1 + 0.9 * 0.9);
}

TEST(MetricsTest, PercentileEdgeCases) {
  // Empty histogram reports 0 for every quantile.
  HistogramData empty;
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(empty, 0.50), 0.0);
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(empty, 0.99), 0.0);

  // The overflow bucket is open-ended, so percentiles landing there clamp
  // to its lower bound (the last finite decade, 10 s) instead of inf.
  HistogramData overflow;
  overflow.buckets[kHistogramBuckets - 1] = 4;
  overflow.count = 4;
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(overflow, 0.99), 1e4);

  // Out-of-range quantiles clamp to [0, 1].
  HistogramData one;
  one.buckets[3] = 1;
  one.count = 1;
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(one, -1.0), 0.1);
  EXPECT_DOUBLE_EQ(histogram_percentile_ms(one, 2.0), 1.0);
}

TEST(MetricsTest, TextAndJsonExposePercentiles) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  Histogram h = registry.histogram("test.pct.histogram");
  h.observe_ms(0.5);  // single observation in bucket 3

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("test.pct.histogram.p50_ms "), std::string::npos);
  EXPECT_NE(text.find("test.pct.histogram.p95_ms "), std::string::npos);
  EXPECT_NE(text.find("test.pct.histogram.p99_ms "), std::string::npos);

  const std::string json = registry.to_json();
  EXPECT_TRUE(ucudnn::test::JsonValidator(json).validate())
      << "metrics JSON is malformed";
  EXPECT_NE(json.find("\"test.pct.histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_ms\":0.55"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

TEST(MetricsTest, SnapshotAndTextCoverEveryKind) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("test.snap.counter").add(3);
  registry.double_counter("test.snap.double").add(1.5);
  registry.gauge("test.snap.gauge").set(-4);
  registry.histogram("test.snap.histogram").observe_ms(0.5);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_GE(snap.counters.at("test.snap.counter"), 3u);
  EXPECT_GE(snap.double_counters.at("test.snap.double"), 1.5);
  EXPECT_EQ(snap.gauges.at("test.snap.gauge"), -4);
  EXPECT_GE(snap.histograms.at("test.snap.histogram").count, 1u);

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("test.snap.counter "), std::string::npos);
  EXPECT_NE(text.find("test.snap.gauge -4"), std::string::npos);
  EXPECT_NE(text.find("test.snap.histogram.count "), std::string::npos);
  EXPECT_NE(text.find("test.snap.histogram.sum_ms "), std::string::npos);
}

TEST(MetricsTest, ResetZeroesCellsButKeepsHandlesValid) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  Counter c = registry.counter("test.reset.counter");
  Histogram h = registry.histogram("test.reset.histogram");
  c.add(10);
  h.observe_ms(1.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.data().count, 0u);
  // The pre-reset handle still points at the live cell.
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(registry.counter("test.reset.counter").value(), 2u);
}

TEST(MetricsTest, CountersAreThreadSafe) {
  Counter c = MetricsRegistry::instance().counter("test.threads.counter");
  const std::uint64_t base = c.value();
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), base + std::uint64_t{kThreads} * kAdds);
}

TEST(ScopedSpanTest, RecordsNestingDepthAndContainment) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.clear();
  {
    const ScopedSpan outer("outer", [] { return std::string("ctx"); });
    EXPECT_TRUE(outer.active());
    {
      const ScopedSpan mid("mid");
      const ScopedSpan inner("inner");
      (void)inner;
      (void)mid;
    }
  }
  recorder.set_enabled(false);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded when they close, innermost first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].name, "mid");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0u);
  EXPECT_EQ(events[2].detail, "ctx");
  EXPECT_EQ(events[0].tid, events[2].tid);
  // Temporal containment: the outer span brackets the inner ones.
  EXPECT_LE(events[2].ts_us, events[0].ts_us);
  EXPECT_GE(events[2].ts_us + events[2].dur_us,
            events[0].ts_us + events[0].dur_us);
  recorder.clear();
}

TEST(ScopedSpanTest, ThreadsGetDistinctOrdinals) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.clear();
  std::thread a([] { const ScopedSpan span("thread_a"); });
  std::thread b([] { const ScopedSpan span("thread_b"); });
  a.join();
  b.join();
  recorder.set_enabled(false);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 0u);
  recorder.clear();
}

TEST(ScopedSpanTest, ToJsonEscapesAndShapesChromeEvents) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.set_enabled(true);
  recorder.clear();
  {
    const ScopedSpan span("quoted", [] {
      return std::string("say \"hi\"\nback\\slash");
    });
  }
  recorder.set_enabled(false);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"quoted\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ucudnn\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\"\\nback\\\\slash"), std::string::npos);
  recorder.clear();
}

TEST(ScopedSpanTest, DisabledSpansAllocateNothing) {
  // Force every singleton (and its internal state) into existence first so
  // the measured window sees only the spans themselves.
  TraceRecorder& recorder = TraceRecorder::instance();
  MetricsRegistry::instance();
  recorder.set_enabled(false);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const ScopedSpan plain("disabled");
    const ScopedSpan with_detail("disabled", [] {
      return std::string("this detail lambda must never run");
    });
    if (plain.active() || with_detail.active()) {
      FAIL() << "span active while recorder disabled";
    }
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled spans must not allocate";
}

TEST(ScopedSpanTest, DisabledSpansRecordNoEvents) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.set_enabled(false);
  recorder.clear();
  {
    const ScopedSpan span("invisible");
  }
  EXPECT_TRUE(recorder.events().empty());
}

}  // namespace
}  // namespace ucudnn::telemetry
