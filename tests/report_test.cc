// Execution-report tests (docs/observability.md, "Execution reports & bench
// artifacts").
//
// Coverage: (1) the JSON shape is pinned byte-for-byte against a hand-built
// report so downstream consumers can rely on key order and number rendering;
// (2) a real WR run's report embeds the exact ExecutionPlan::to_string()
// explain line and the per-segment algorithm names in the text form, and the
// JSON form passes the shared validator; (3) in virtual execution the
// executor's device-clock measurements must agree with the planner's DP
// estimates — both derive from the same device model, so the report's
// estimation error is (near) zero; (4) UCUDNN_REPORT_FILE round-trip through
// write_report_file in both renderings; (5) the workspace auditor's
// utilization gauge is mirrored into the report's audit section.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/workspace_audit.h"
#include "core/plan.h"
#include "core/ucudnn.h"
#include "json_validator.h"
#include "kernels/registry.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "tensor/tensor.h"

using ucudnn::test::JsonValidator;

namespace ucudnn {
namespace {

// ------------------------------------------------------------ fixtures

kernels::ConvProblem test_problem() {
  return kernels::ConvProblem({8, 8, 12, 12}, {8, 8, 3, 3},
                              {.pad_h = 1, .pad_w = 1});
}

/// Stores deterministic perf tables for every powerOfTwo micro-batch of
/// `problem` on `handle`'s device: a GEMM winner whose workspace is linear in
/// the micro-batch and a zero-workspace fallback 100x slower. With a limit of
/// 4x the full winner workspace the DP must pick the [4, 4] GEMM division.
void prefill_plans(core::UcudnnHandle& handle,
                   const kernels::ConvProblem& problem) {
  const std::string& device_name = handle.device().spec().name;
  const std::size_t full_ws = kernels::algo_workspace(
      ConvKernelType::kForward, kernels::fwd_algo::kGemm, problem);
  for (const std::int64_t size : core::candidate_micro_sizes(
           core::BatchSizePolicy::kPowerOfTwo, problem.batch())) {
    std::vector<mcudnn::AlgoPerf> perfs(2);
    perfs[0].algo = kernels::fwd_algo::kGemm;
    perfs[0].status = Status::kSuccess;
    perfs[0].time_ms = 1.0 + 0.01 * static_cast<double>(size);
    perfs[0].memory = static_cast<std::size_t>(size) * full_ws;
    perfs[1].algo = kernels::fwd_algo::kDirect;
    perfs[1].status = Status::kSuccess;
    perfs[1].time_ms = 100.0 + 0.01 * static_cast<double>(size);
    perfs[1].memory = 0;
    handle.cache()->store(device_name, ConvKernelType::kForward, problem, size,
                          perfs);
  }
}

std::size_t forcing_limit(const kernels::ConvProblem& problem) {
  return 4 * kernels::algo_workspace(ConvKernelType::kForward,
                                     kernels::fwd_algo::kGemm, problem);
}

core::Options wr_pow2(std::size_t limit) {
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = limit;
  return opts;
}

/// Runs one forward convolution with real host operands.
void run_forward(core::UcudnnHandle& handle,
                 const kernels::ConvProblem& p) {
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  std::vector<float> w(static_cast<std::size_t>(p.w.count()));
  std::vector<float> y(static_cast<std::size_t>(p.y.count()), 0.0f);
  fill_random(x.data(), p.x.count(), 11);
  fill_random(w.data(), p.w.count(), 12);
  handle.convolution(ConvKernelType::kForward, p, 1.0f, x.data(), w.data(),
                     0.0f, y.data());
}

// ----------------------------------------------- golden JSON structure

TEST(ReportTest, GoldenJsonStructure) {
  // Hand-built report with binary-exact numbers (2.0 vs 2.5 -> 25% error) so
  // the expected document is reproducible byte-for-byte.
  telemetry::ExecutionReport r;
  r.device = "TestDev";
  r.policy = "WR";
  r.batch_size_policy = "powerOfTwo";
  r.plan_cache_hits = 3;
  r.plan_cache_misses = 1;
  r.plan_cache_epoch = 0;

  telemetry::KernelReport k;
  k.label = "conv1(Forward)";
  k.kernel_type = "Forward";
  k.problem = "x(4,3,8,8)";
  k.plan = "Forward x(4,3,8,8) [4:algo2@0] ws=1024 perKernel";
  k.policy = "WR";
  k.provenance = "wr_dp";
  k.workspace_kind = "perKernel";
  k.workspace_limit = 2048;
  k.workspace_declared = 1024;
  k.executions = 1;
  k.replans = 0;

  telemetry::SegmentReport s;
  s.batch = 4;
  s.algo = 2;
  s.algo_name = "GEMM";
  s.accumulate = false;
  s.workspace_bytes = 1024;
  s.estimated_ms = 2.0;
  s.measured_ms_total = 2.5;
  s.runs = 1;
  k.segments.push_back(s);
  r.kernels.push_back(k);

  telemetry::WorkspaceAuditReport a;
  a.kernel = "WR/GEMM";
  a.declared_bytes = 1024;
  a.touched_bytes = 512;
  a.runs = 1;
  r.audit.push_back(a);

  EXPECT_DOUBLE_EQ(s.measured_ms_avg(), 2.5);
  EXPECT_DOUBLE_EQ(s.error_pct(), 25.0);
  EXPECT_DOUBLE_EQ(r.estimation_error_pct(), 25.0);
  EXPECT_EQ(r.measured_segments(), 1u);
  EXPECT_DOUBLE_EQ(a.utilization_pct(), 50.0);

  const std::string expected =
      "{\"schema\":\"ucudnn-execution-report-v1\",\"device\":\"TestDev\","
      "\"policy\":\"WR\",\"batch_size_policy\":\"powerOfTwo\","
      "\"plan_cache\":{\"hits\":3,\"misses\":1,\"epoch\":0},"
      "\"degradation\":\"\",\"estimation_error_pct\":25,"
      "\"measured_segments\":1,\"kernels\":[{\"label\":\"conv1(Forward)\","
      "\"kernel_type\":\"Forward\",\"problem\":\"x(4,3,8,8)\","
      "\"plan\":\"Forward x(4,3,8,8) [4:algo2@0] ws=1024 perKernel\","
      "\"policy\":\"WR\",\"provenance\":\"wr_dp\","
      "\"workspace\":{\"kind\":\"perKernel\",\"limit_bytes\":2048,"
      "\"declared_bytes\":1024},\"executions\":1,\"replans\":0,"
      "\"estimated_ms\":2,\"measured_ms\":2.5,\"error_pct\":25,"
      "\"segments\":[{\"batch\":4,\"algo\":2,\"algo_name\":\"GEMM\","
      "\"accumulate\":false,\"workspace_bytes\":1024,\"estimated_ms\":2,"
      "\"measured_ms\":2.5,\"error_pct\":25,\"runs\":1}]}],"
      "\"audit\":[{\"kernel\":\"WR/GEMM\",\"declared_bytes\":1024,"
      "\"touched_bytes\":512,\"utilization_pct\":50,\"runs\":1}]}";
  EXPECT_EQ(r.to_json(), expected);
  EXPECT_TRUE(JsonValidator(r.to_json()).validate());

  const std::string text = r.to_text();
  EXPECT_NE(text.find("=== ucudnn execution report: device=TestDev "
                      "policy=WR batchPolicy=powerOfTwo ==="),
            std::string::npos);
  EXPECT_NE(text.find("plan cache: 3 hit(s), 1 miss(es), epoch 0"),
            std::string::npos);
  EXPECT_NE(text.find("degradation: none"), std::string::npos);
  EXPECT_NE(text.find(k.plan), std::string::npos);
  EXPECT_NE(text.find("utilization=50.0%"), std::string::npos);
  EXPECT_NE(text.find("aggregate estimation error: 25.00% over 1 measured "
                      "segment(s)"),
            std::string::npos);
}

// ------------------------------------ real run: plan explain agreement

TEST(ReportTest, ReportNamesTheExecutedDivisionAndAlgorithms) {
  const kernels::ConvProblem p = test_problem();
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()),
      wr_pow2(forcing_limit(p)));
  prefill_plans(handle, p);
  run_forward(handle, p);

  const telemetry::ExecutionReport report = handle.execution_report();
  ASSERT_EQ(report.kernels.size(), 1u);
  const telemetry::KernelReport& k = report.kernels[0];

  // The explain line is exactly the executed plan's to_string(): the forced
  // [4, 4] GEMM division with its per-kernel workspace.
  EXPECT_EQ(k.plan, "Forward " + p.to_string() + " [4:algo2@0, 4:algo2@4608]"
                    " ws=" + std::to_string(k.workspace_declared) +
                    " perKernel");
  EXPECT_EQ(k.policy, "WR");
  EXPECT_EQ(k.provenance, "wr_dp");
  EXPECT_EQ(k.workspace_kind, "perKernel");
  EXPECT_EQ(k.workspace_limit, forcing_limit(p));
  EXPECT_EQ(k.executions, 1u);
  EXPECT_EQ(k.replans, 0u);
  ASSERT_EQ(k.segments.size(), 2u);
  for (const telemetry::SegmentReport& s : k.segments) {
    EXPECT_EQ(s.batch, 4);
    EXPECT_EQ(s.algo, kernels::fwd_algo::kGemm);
    EXPECT_EQ(s.algo_name, "GEMM");
    EXPECT_EQ(s.runs, 1u);
    EXPECT_GT(s.measured_ms_avg(), 0.0);
  }

  // Text form names the same division and algorithms.
  const std::string text = report.to_text();
  EXPECT_NE(text.find(k.plan), std::string::npos);
  EXPECT_NE(text.find("GEMM"), std::string::npos);
  EXPECT_NE(text.find(k.label), std::string::npos);

  // JSON form is machine-readable.
  const std::string json = report.to_json();
  EXPECT_TRUE(JsonValidator(json).validate()) << "report JSON is malformed";
  EXPECT_NE(json.find("\"schema\":\"ucudnn-execution-report-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"algo_name\":\"GEMM\""), std::string::npos);
}

// -------------------------------- virtual mode: estimate ~= measured

TEST(ReportTest, VirtualModeEstimateMatchesMeasured) {
  // On a simulated device both the planner's estimates and the executor's
  // device-clock measurements come from the same performance model, so the
  // report must show (near-)zero estimation error.
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  ASSERT_TRUE(dev->is_simulated());
  const kernels::ConvProblem p({32, 16, 27, 27}, {32, 16, 5, 5},
                               {.pad_h = 2, .pad_w = 2});
  core::UcudnnHandle handle(dev, wr_pow2(std::size_t{64} << 20));

  // Operands are never dereferenced in virtual execution.
  const int kIterations = 2;
  for (int i = 0; i < kIterations; ++i) {
    handle.convolution(ConvKernelType::kForward, p, 1.0f, nullptr, nullptr,
                       0.0f, nullptr);
  }

  const telemetry::ExecutionReport report = handle.execution_report();
  ASSERT_EQ(report.kernels.size(), 1u);
  const telemetry::KernelReport& k = report.kernels[0];
  ASSERT_FALSE(k.segments.empty());
  EXPECT_EQ(k.executions, static_cast<std::uint64_t>(kIterations));
  for (const telemetry::SegmentReport& s : k.segments) {
    EXPECT_EQ(s.runs, static_cast<std::uint64_t>(kIterations));
    EXPECT_GT(s.estimated_ms, 0.0);
    EXPECT_NEAR(s.measured_ms_avg(), s.estimated_ms,
                1e-9 + 1e-6 * s.estimated_ms);
  }
  EXPECT_EQ(report.measured_segments(), k.segments.size());
  EXPECT_LT(report.estimation_error_pct(), 0.01);
  EXPECT_LT(k.error_pct(), 0.01);
}

// ------------------------------------------ UCUDNN_REPORT_FILE plumbing

TEST(ReportTest, WriteReportFileRendersJsonAndText) {
  telemetry::ExecutionReport r;
  r.device = "TestDev";
  r.policy = "WR";
  r.batch_size_policy = "undivided";

  const auto tmp = std::filesystem::temp_directory_path();
  const std::string json_path = (tmp / "ucudnn_report_test.json").string();
  const std::string text_path = (tmp / "ucudnn_report_test.txt").string();

  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  telemetry::write_report_file(r, json_path);
  const std::string json = slurp(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonValidator(json).validate()) << "report file is malformed";
  EXPECT_NE(json.find("\"schema\":\"ucudnn-execution-report-v1\""),
            std::string::npos);

  telemetry::write_report_file(r, text_path);
  const std::string text = slurp(text_path);
  EXPECT_NE(text.find("=== ucudnn execution report: device=TestDev"),
            std::string::npos);
  EXPECT_EQ(text.find("\"schema\""), std::string::npos)
      << "non-.json paths must get the text rendering";

  // Empty path is the disabled state, not an error.
  telemetry::write_report_file(r, "");

  std::remove(json_path.c_str());
  std::remove(text_path.c_str());
}

// --------------------------------------- audit gauge -> report mirror

TEST(ReportTest, AuditUtilizationIsMirroredIntoGaugeAndReport) {
  analysis::reset_audit_stats();
  analysis::set_workspace_audit_enabled(true);
  const kernels::ConvProblem p = test_problem();
  {
    core::UcudnnHandle handle(
        std::make_shared<device::Device>(device::host_cpu_spec()),
        wr_pow2(forcing_limit(p)));
    prefill_plans(handle, p);
    run_forward(handle, p);

    const telemetry::ExecutionReport report = handle.execution_report();
    ASSERT_FALSE(report.audit.empty());
    bool found_gemm = false;
    for (const telemetry::WorkspaceAuditReport& a : report.audit) {
      if (a.kernel != "Forward:GEMM") continue;
      found_gemm = true;
      EXPECT_GT(a.declared_bytes, 0u);
      EXPECT_GT(a.touched_bytes, 0u);
      EXPECT_GT(a.runs, 0u);
      EXPECT_GT(a.utilization_pct(), 0.0);
      EXPECT_LE(a.utilization_pct(), 100.0);

      // The same utilization is published as a process-wide gauge.
      const telemetry::MetricsSnapshot snap =
          telemetry::MetricsRegistry::instance().snapshot();
      const auto it =
          snap.gauges.find("ucudnn.audit.ws_utilization." + a.kernel);
      ASSERT_NE(it, snap.gauges.end())
          << "missing gauge for " << a.kernel;
      EXPECT_GE(it->second, 1);
      EXPECT_LE(it->second, 100);
    }
    EXPECT_TRUE(found_gemm) << "no Forward:GEMM audit entry in the report";
  }
  analysis::set_workspace_audit_enabled(false);
  analysis::reset_audit_stats();
}

}  // namespace
}  // namespace ucudnn
