// Concurrency-correctness tests for the shared planner-side state (ROADMAP
// item 1: a serving layer shares one BenchmarkCache and one PlanCache across
// worker threads) and for the runtime lock-order detector of
// common/thread_annotations.h.
//
// The stress tests are most valuable under the `tsan` preset, where TSan
// checks every interleaving they generate; on the default preset they still
// verify the locked invariants. The lock-order tests skip themselves when
// the detector is compiled out (release builds without sanitizers).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"
#include "core/benchmark_cache.h"
#include "core/planner.h"
#include "kernels/conv_problem.h"
#include "mcudnn/mcudnn.h"
#include "serve/server.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace ucudnn {
namespace {

using core::BenchmarkCache;
using core::PlanCache;
using kernels::ConvProblem;

ConvProblem problem_for(int variant) {
  return ConvProblem({8, 8 + variant, 12, 12}, {8, 8 + variant, 3, 3},
                     {.pad_h = 1, .pad_w = 1});
}

std::vector<mcudnn::AlgoPerf> sample_perfs() {
  return {
      {0, Status::kSuccess, 1.0, 1024},
      {1, Status::kSuccess, 2.0, 0},
      {2, Status::kSuccess, 3.0, 4096},
  };
}

TEST(BenchmarkCacheConcurrencyTest, ParallelLookupStoreBlacklist) {
  BenchmarkCache cache;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr int kVariants = 4;
  std::atomic<int> mismatches{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &mismatches, t] {
      const std::string device = "dev" + std::to_string(t % 2);
      for (int i = 0; i < kIters; ++i) {
        const ConvProblem problem = problem_for(i % kVariants);
        cache.store(device, ConvKernelType::kForward, problem, 4,
                    sample_perfs());
        // is_blacklisted is sampled BEFORE the lookup: once an algorithm is
        // observed blacklisted, every later lookup must filter it (the
        // blacklist only grows, so this order makes the check race-free).
        const bool blacklisted_before =
            cache.is_blacklisted(device, ConvKernelType::kForward, 2);
        const auto hit =
            cache.lookup(device, ConvKernelType::kForward, problem, 4);
        if (!hit.has_value() || hit->empty()) mismatches.fetch_add(1);
        if (hit.has_value() && blacklisted_before) {
          for (const mcudnn::AlgoPerf& perf : *hit) {
            if (perf.algo == 2) mismatches.fetch_add(1);
          }
        }
        if (i == kIters / 2 && t == 0) {
          cache.blacklist(device, ConvKernelType::kForward, 2);
        }
        (void)cache.size();
        (void)cache.blacklisted_count();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  // 2 devices x 1 kernel type x kVariants problems x 1 micro-batch.
  EXPECT_EQ(cache.size(), 2u * kVariants);
  EXPECT_EQ(cache.blacklisted_count(), 1u);
  EXPECT_TRUE(cache.is_blacklisted("dev0", ConvKernelType::kForward, 2));
  const auto filtered =
      cache.lookup("dev0", ConvKernelType::kForward, problem_for(0), 4);
  ASSERT_TRUE(filtered.has_value());
  for (const mcudnn::AlgoPerf& perf : *filtered) EXPECT_NE(perf.algo, 2);
}

TEST(PlanCacheConcurrencyTest, ParallelLookupInsertEpochBump) {
  PlanCache cache;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<int> null_plans{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &null_plans, t] {
      for (int i = 0; i < kIters; ++i) {
        // Keys embed the epoch exactly as the Planner builds them, so a
        // bump_epoch invalidates by changing every future key.
        const std::string key = "plan:" + std::to_string(i % 8) + ":e" +
                                std::to_string(cache.epoch());
        std::shared_ptr<const core::ExecutionPlan> plan = cache.lookup(key);
        if (plan == nullptr) {
          plan = std::make_shared<const core::ExecutionPlan>();
          cache.insert(key, plan);
        }
        // A fetched plan must stay usable even if another thread bumps the
        // epoch (shared_ptr keeps mid-flight plans alive).
        if (plan->batch() != 0) null_plans.fetch_add(1);
        if (t == 0 && i % 100 == 99) cache.bump_epoch();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(null_plans.load(), 0);
  // Exactly one lookup per iteration: every one is a hit or a miss.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(cache.epoch(), static_cast<std::uint64_t>(kIters / 100));
  // 8 base keys x at most (bumps + 1) epoch generations ever inserted.
  EXPECT_LE(cache.size(), 8u * (kIters / 100 + 1));
}

// ---------------------------------------------------------------------------
// Runtime lock-order detector.
// ---------------------------------------------------------------------------

std::atomic<int> g_violations{0};
std::string g_last_message;  // handler runs on the acquiring (test) thread

void capture_violation(const lockorder::Violation& violation) {
  g_violations.fetch_add(1);
  g_last_message = violation.message;
}

class LockOrderDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lockorder::kCompiledIn) {
      GTEST_SKIP() << "lock-order detector compiled out "
                      "(build with UCUDNN_LOCK_ORDER_DETECTOR)";
    }
    lockorder::reset();
    lockorder::set_violation_handler(&capture_violation);
    lockorder::set_enabled(true);
    g_violations.store(0);
    g_last_message.clear();
  }

  void TearDown() override {
    lockorder::set_enabled(false);
    lockorder::set_violation_handler(nullptr);
    lockorder::reset();
  }
};

TEST_F(LockOrderDetectorTest, DetectsSeededInversion) {
  Mutex a{"test.A"};
  Mutex b{"test.B"};
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);  // records A -> B
  }
  EXPECT_EQ(g_violations.load(), 0);
  {
    MutexLock lock_b(b);
    MutexLock lock_a(a);  // B -> A: inversion of the recorded order
  }
  EXPECT_EQ(g_violations.load(), 1);
  EXPECT_NE(g_last_message.find("test.A"), std::string::npos) << g_last_message;
  EXPECT_NE(g_last_message.find("test.B"), std::string::npos) << g_last_message;
  EXPECT_NE(g_last_message.find("inversion"), std::string::npos)
      << g_last_message;
}

TEST_F(LockOrderDetectorTest, DetectsTransitiveInversion) {
  Mutex a{"test.A"};
  Mutex b{"test.B"};
  Mutex c{"test.C"};
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);  // A -> B
  }
  {
    MutexLock lock_b(b);
    MutexLock lock_c(c);  // B -> C
  }
  EXPECT_EQ(g_violations.load(), 0);
  {
    MutexLock lock_c(c);
    MutexLock lock_a(a);  // C -> A closes the A -> B -> C cycle
  }
  EXPECT_EQ(g_violations.load(), 1);
}

TEST_F(LockOrderDetectorTest, SilentOnConsistentOrder) {
  Mutex outer{"test.Outer"};
  Mutex inner{"test.Inner"};
  for (int i = 0; i < 3; ++i) {
    MutexLock lock_outer(outer);
    MutexLock lock_inner(inner);
  }
  { MutexLock lock_inner(inner); }  // alone, not under outer: still consistent
  EXPECT_EQ(g_violations.load(), 0);

  bool saw_edge = false;
  for (const lockorder::Edge& edge : lockorder::edges()) {
    if (edge.from == "test.Outer" && edge.to == "test.Inner") {
      saw_edge = true;
      EXPECT_EQ(edge.count, 3u);
    }
  }
  EXPECT_TRUE(saw_edge);
}

TEST_F(LockOrderDetectorTest, CrossThreadInversionDetected) {
  Mutex a{"test.X"};
  Mutex b{"test.Y"};
  // Thread 1 establishes X -> Y and finishes before thread 2 starts, so the
  // inversion is never an actual deadlock — exactly the latent bug class the
  // detector exists to catch.
  std::thread first([&] {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  });
  first.join();
  std::thread second([&] {
    MutexLock lock_b(b);
    MutexLock lock_a(a);
  });
  second.join();
  EXPECT_EQ(g_violations.load(), 1);
}

TEST_F(LockOrderDetectorTest, ExportsEdgesThroughTelemetry) {
  Mutex outer{"test.ExportOuter"};
  Mutex inner{"test.ExportInner"};
  {
    MutexLock lock_outer(outer);
    MutexLock lock_inner(inner);
  }
  telemetry::sync_lock_order_metrics();
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::instance().snapshot();
  const auto total = snap.gauges.find("ucudnn.lockorder.edges");
  ASSERT_NE(total, snap.gauges.end());
  EXPECT_GE(total->second, 1);
  const auto edge = snap.gauges.find(
      "ucudnn.lockorder.edge.test.ExportOuter->test.ExportInner");
  ASSERT_NE(edge, snap.gauges.end());
  EXPECT_EQ(edge->second, 1);
}

TEST_F(LockOrderDetectorTest, DisabledDetectorRecordsNothing) {
  lockorder::set_enabled(false);
  Mutex a{"test.DisabledA"};
  Mutex b{"test.DisabledB"};
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  {
    MutexLock lock_b(b);
    MutexLock lock_a(a);  // would be an inversion if enabled
  }
  EXPECT_EQ(g_violations.load(), 0);
  EXPECT_EQ(lockorder::edge_count(), 0u);
}

// --- serving front-end queue stress (run under the tsan preset) -----------

TEST(ServeConcurrencyTest, EightThreadSubmitWaitStress) {
  core::Options core_opts;
  core_opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  core_opts.workspace_limit = std::size_t{4} << 20;
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), core_opts);

  serve::ServeOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 32;  // 8 clients x 1 outstanding: no shedding rung
  opts.batch_window_us = 50;
  opts.max_batch = 8;
  serve::Server server(handle, opts);

  const kernels::ConvProblem problem({1, 2, 6, 6}, {4, 2, 3, 3},
                                     {.pad_h = 1, .pad_w = 1});
  std::vector<float> weights(static_cast<std::size_t>(problem.w.count()),
                             0.25f);

  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::atomic<int> completed{0};
  std::atomic<int> unresolved{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // One outstanding request per thread; buffers are reused only after
      // the previous request resolved.
      std::vector<float> input(static_cast<std::size_t>(problem.x.count()),
                               1.0f + 0.01f * static_cast<float>(t));
      std::vector<float> output(static_cast<std::size_t>(problem.y.count()),
                                0.0f);
      for (int i = 0; i < kIters; ++i) {
        serve::ServeRequest req;
        req.problem = problem;
        req.input = input.data();
        req.weights = weights.data();
        req.output = output.data();
        serve::TicketPtr ticket = server.submit(std::move(req));
        Status status = Status::kInternalError;
        if (!ticket->wait_for_us(30'000'000, &status)) {
          unresolved.fetch_add(1);
          return;  // never reuse buffers a lost request still points at
        }
        if (status == Status::kSuccess) completed.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(unresolved.load(), 0);
  EXPECT_EQ(completed.load(), kThreads * kIters);

  // Concurrent drains are idempotent and race-free.
  std::thread d1([&server] { server.drain(); });
  std::thread d2([&server] { server.drain(); });
  d1.join();
  d2.join();
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.counters().completed,
            static_cast<std::uint64_t>(kThreads * kIters));
}

TEST(FlightRecorderConcurrencyTest, ConcurrentWritersAndSnapshotReaders) {
  // Eight writer threads each push 10k events into their own seqlock ring
  // while a reader thread snapshots continuously — the interleavings TSan
  // checks under the tsan preset. Counters must balance exactly and no
  // snapshot may ever observe a torn (mixed-write) event.
  constexpr std::size_t kCapacity = 256;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  telemetry::FlightRecorder recorder(kCapacity, /*dump_path=*/"");

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::thread reader([&recorder, &done, &torn] {
    while (!done.load(std::memory_order_acquire)) {
      for (const telemetry::FlightEvent& event : recorder.snapshot()) {
        // Writers encode arg1 = arg0 + 1; a torn event breaks the pairing.
        if (event.arg1 != event.arg0 + 1) torn.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t tag =
            static_cast<std::int64_t>(t) * kPerThread + i;
        recorder.record(telemetry::FlightEventKind::kMark, "stress",
                        static_cast<std::uint64_t>(t) + 1, tag, tag + 1);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Each thread retains its last kCapacity events; the rest were dropped.
  EXPECT_EQ(recorder.dropped(),
            static_cast<std::uint64_t>(kThreads) * (kPerThread - kCapacity));
  const std::vector<telemetry::FlightEvent> final_view = recorder.snapshot();
  EXPECT_EQ(final_view.size(), static_cast<std::size_t>(kThreads) * kCapacity);
  for (std::size_t i = 1; i < final_view.size(); ++i) {
    EXPECT_LE(final_view[i - 1].ts_us, final_view[i].ts_us);
  }
}

}  // namespace
}  // namespace ucudnn
