// Tests for the mcudnn API layer: descriptor validation, workspace queries,
// Get/Find algorithm semantics (including the Fig. 1 "one byte short" cliff),
// numeric vs virtual execution, and the Status-returning C-style surface.
#include <gtest/gtest.h>

#include <memory>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "mcudnn/mcudnn.h"

namespace ucudnn::mcudnn {
namespace {

using kernels::ConvProblem;

std::shared_ptr<device::Device> p100() {
  return std::make_shared<device::Device>(device::p100_sxm2_spec());
}

ConvProblem small_problem(std::int64_t batch = 4) {
  return ConvProblem({batch, 8, 12, 12}, {8, 8, 3, 3}, {.pad_h = 1, .pad_w = 1});
}

TEST(HandleTest, DefaultsToHostCpuNumeric) {
  Handle handle;
  EXPECT_EQ(handle.device().spec().name, "HostCpu");
  EXPECT_EQ(handle.exec_mode(), ExecMode::kNumeric);
}

TEST(HandleTest, SimulatedDeviceDefaultsToVirtual) {
  Handle handle(p100());
  EXPECT_EQ(handle.exec_mode(), ExecMode::kVirtual);
  handle.set_exec_mode(ExecMode::kNumeric);
  EXPECT_EQ(handle.exec_mode(), ExecMode::kNumeric);
}

TEST(MakeProblemTest, ForwardValidatesOutputShape) {
  const TensorDesc x{{2, 3, 8, 8}};
  const FilterDesc w{4, 3, 3, 3};
  const ConvGeometry conv{.pad_h = 1, .pad_w = 1};
  const TensorDesc y{{2, 4, 8, 8}};
  const ConvProblem p =
      make_problem(ConvKernelType::kForward, x, w, conv, y);
  EXPECT_EQ(p.y, y.shape);
  const TensorDesc bad{{2, 4, 7, 8}};
  EXPECT_THROW(make_problem(ConvKernelType::kForward, x, w, conv, bad), Error);
}

TEST(MakeProblemTest, BackwardDataSwapsRoles) {
  const TensorDesc dy{{2, 4, 8, 8}};
  const FilterDesc w{4, 3, 3, 3};
  const ConvGeometry conv{.pad_h = 1, .pad_w = 1};
  const TensorDesc dx{{2, 3, 8, 8}};
  const ConvProblem p =
      make_problem(ConvKernelType::kBackwardData, dy, w, conv, dx);
  EXPECT_EQ(p.x, dx.shape);
  EXPECT_EQ(p.y, dy.shape);
}

TEST(FindAlgorithmsTest, SimulatedTimesAreSortedAndComplete) {
  Handle handle(p100());
  const auto perfs =
      find_algorithms(handle, ConvKernelType::kForward, small_problem());
  ASSERT_EQ(perfs.size(), 8u);
  double prev = 0.0;
  for (const auto& perf : perfs) {
    if (perf.status != Status::kSuccess) continue;
    EXPECT_GE(perf.time_ms, prev);
    prev = perf.time_ms;
  }
  // Every supported algorithm reports its true workspace need.
  for (const auto& perf : perfs) {
    if (perf.status != Status::kSuccess) continue;
    EXPECT_EQ(perf.memory, kernels::algo_workspace(ConvKernelType::kForward,
                                                   perf.algo, small_problem()));
  }
}

TEST(FindAlgorithmsTest, UnsupportedAlgosTrailWithStatus) {
  Handle handle(p100());
  const ConvProblem strided({2, 3, 11, 11}, {4, 3, 3, 3},
                            {.stride_h = 2, .stride_w = 2});
  const auto perfs =
      find_algorithms(handle, ConvKernelType::kForward, strided);
  bool seen_unsupported = false;
  for (const auto& perf : perfs) {
    if (perf.status != Status::kSuccess) {
      seen_unsupported = true;
    } else {
      EXPECT_FALSE(seen_unsupported) << "supported entry after unsupported";
    }
  }
  EXPECT_TRUE(seen_unsupported);
}

TEST(FindAlgorithmsTest, MeasuredModeProducesPositiveTimes) {
  Handle handle;  // host CPU
  const auto perfs =
      find_algorithms(handle, ConvKernelType::kForward, small_problem(2));
  for (const auto& perf : perfs) {
    if (perf.status == Status::kSuccess) {
      EXPECT_GT(perf.time_ms, 0.0);
    }
  }
}

TEST(FindAlgorithmsExTest, RespectsTheProvidedWorkspaceBuffer) {
  // The Ex entry point only runs algorithms that fit the caller's buffer;
  // the rest come back with kAllocFailed, like cuDNN's Ex functions.
  Handle handle(p100());
  const ConvProblem p = small_problem(8);
  const std::size_t tiny = 1024;
  const auto perfs = find_algorithms_ex(handle, ConvKernelType::kForward, p,
                                        nullptr, nullptr, nullptr, nullptr,
                                        tiny);
  bool saw_fit = false, saw_too_big = false;
  for (const auto& perf : perfs) {
    if (perf.status == Status::kSuccess) {
      EXPECT_LE(perf.memory, tiny);
      saw_fit = true;
    } else if (perf.status == Status::kAllocFailed) {
      EXPECT_GT(perf.memory, tiny);
      saw_too_big = true;
    }
  }
  EXPECT_TRUE(saw_fit);      // zero-workspace algorithms always fit
  EXPECT_TRUE(saw_too_big);  // staged algorithms exceed 1 KiB here
}

TEST(FindAlgorithmsExTest, MeasuredModeWritesRealResults) {
  Handle handle;  // host CPU
  const ConvProblem p = small_problem(2);
  Tensor x(p.x), w_tensor(TensorShape{p.w.k, p.w.c, p.w.r, p.w.s}), y(p.y);
  Tensor y_ref(p.y);
  fill_random(x, 3);
  fill_random(w_tensor, 4);
  const std::size_t ws_bytes =
      workspace_size(handle, ConvKernelType::kForward, p, kernels::fwd_algo::kGemm);
  AlignedBuffer<char> ws(ws_bytes);
  const auto perfs = find_algorithms_ex(handle, ConvKernelType::kForward, p,
                                        x.data(), w_tensor.data(), y.data(),
                                        ws.data(), ws_bytes);
  EXPECT_FALSE(perfs.empty());
  EXPECT_EQ(perfs.front().status, Status::kSuccess);
  // The Ex call leaves a real convolution result in y (last-run algorithm).
  kernels::execute(ConvKernelType::kForward, kernels::fwd_algo::kDirect, p,
                   x.data(), w_tensor.data(), y_ref.data(), 1.0f, 0.0f,
                   nullptr, 0);
  EXPECT_LT(max_rel_diff(y.data(), y_ref.data(), p.y.count()), 5e-3);
}

TEST(GetAlgorithmTest, OneByteShortFallsBackToSlowerAlgorithm) {
  // The exact pathology of Fig. 1: a workspace limit one byte below the
  // fastest algorithm's requirement must select a different algorithm.
  Handle handle(p100());
  const ConvProblem p({64, 96, 27, 27}, {256, 96, 5, 5},
                      {.pad_h = 2, .pad_w = 2});
  const int best = get_algorithm(handle, ConvKernelType::kForward, p,
                                 AlgoPreference::kPreferFastest);
  const std::size_t best_ws =
      workspace_size(handle, ConvKernelType::kForward, p, best);
  ASSERT_GT(best_ws, 0u);
  const int fallback =
      get_algorithm(handle, ConvKernelType::kForward, p,
                    AlgoPreference::kSpecifyWorkspaceLimit, best_ws - 1);
  EXPECT_NE(fallback, best);
  const double t_best =
      handle.device().model_time_ms(ConvKernelType::kForward, best, p);
  const double t_fallback =
      handle.device().model_time_ms(ConvKernelType::kForward, fallback, p);
  EXPECT_GT(t_fallback, t_best);
}

TEST(GetAlgorithmTest, NoWorkspacePreferencePicksZeroWorkspaceAlgo) {
  Handle handle(p100());
  const int algo = get_algorithm(handle, ConvKernelType::kForward,
                                 small_problem(), AlgoPreference::kNoWorkspace);
  EXPECT_EQ(workspace_size(handle, ConvKernelType::kForward, small_problem(),
                           algo),
            0u);
}

TEST(ConvolutionTest, NumericForwardMatchesDirectKernel) {
  Handle handle;  // host CPU numeric
  const ConvProblem p = small_problem(2);
  Tensor x(p.x), w_tensor(TensorShape{p.w.k, p.w.c, p.w.r, p.w.s}), y(p.y), y_ref(p.y);
  fill_random(x, 1);
  fill_random(w_tensor, 2);

  const int algo = kernels::fwd_algo::kGemm;
  const std::size_t ws_bytes =
      workspace_size(handle, ConvKernelType::kForward, p, algo);
  AlignedBuffer<char> ws(ws_bytes);
  convolution(handle, ConvKernelType::kForward, p, 1.0f, x.data(),
              w_tensor.data(), 0.0f, y.data(), algo, ws.data(), ws_bytes);

  kernels::execute(ConvKernelType::kForward, kernels::fwd_algo::kDirect, p,
                   x.data(), w_tensor.data(), y_ref.data(), 1.0f, 0.0f,
                   nullptr, 0);
  EXPECT_LT(max_rel_diff(y.data(), y_ref.data(), p.y.count()), 5e-3);
}

TEST(ConvolutionTest, VirtualModeAdvancesClockWithoutTouchingData) {
  auto dev = p100();
  Handle handle(dev, ExecMode::kVirtual);
  const ConvProblem p = small_problem();
  const int algo = kernels::fwd_algo::kImplicitGemm;  // zero workspace
  EXPECT_EQ(dev->clock_ms(), 0.0);
  convolution(handle, ConvKernelType::kForward, p, 1.0f, nullptr, nullptr,
              0.0f, nullptr, algo, nullptr, 0);
  const double once = dev->clock_ms();
  EXPECT_GT(once, 0.0);
  convolution(handle, ConvKernelType::kForward, p, 1.0f, nullptr, nullptr,
              0.0f, nullptr, algo, nullptr, 0);
  EXPECT_DOUBLE_EQ(dev->clock_ms(), 2 * once);
}

TEST(ConvolutionTest, StreamsOverlapInVirtualMode) {
  // cudnnSetStream equivalent: two handles on different streams advance
  // independent clocks; wall time is the longer stream, not the sum.
  auto dev = p100();
  Handle h0(dev, ExecMode::kVirtual);
  Handle h1(dev, ExecMode::kVirtual);
  h1.set_stream(1);
  EXPECT_EQ(h0.stream(), 0);
  EXPECT_EQ(h1.stream(), 1);
  const ConvProblem p = small_problem();
  const int algo = kernels::fwd_algo::kImplicitGemm;
  convolution(h0, ConvKernelType::kForward, p, 1.0f, nullptr, nullptr, 0.0f,
              nullptr, algo, nullptr, 0);
  const double one = dev->clock_ms();
  convolution(h1, ConvKernelType::kForward, p, 1.0f, nullptr, nullptr, 0.0f,
              nullptr, algo, nullptr, 0);
  EXPECT_DOUBLE_EQ(dev->clock_ms(), one);  // overlapped, not serialized
  EXPECT_DOUBLE_EQ(dev->stream_clock_ms(1), one);
  convolution(h1, ConvKernelType::kForward, p, 1.0f, nullptr, nullptr, 0.0f,
              nullptr, algo, nullptr, 0);
  EXPECT_DOUBLE_EQ(dev->clock_ms(), 2 * one);  // stream 1 is now critical
}

TEST(ConvolutionTest, VirtualModeStillEnforcesWorkspaceContract) {
  Handle handle(p100(), ExecMode::kVirtual);
  const ConvProblem p = small_problem();
  EXPECT_THROW(convolution(handle, ConvKernelType::kForward, p, 1.0f, nullptr,
                           nullptr, 0.0f, nullptr, kernels::fwd_algo::kGemm,
                           nullptr, 0),
               Error);
}

TEST(ConvolutionTest, NumericRejectsNullOperands) {
  Handle handle;
  const ConvProblem p = small_problem(1);
  EXPECT_THROW(convolution(handle, ConvKernelType::kForward, p, 1.0f, nullptr,
                           nullptr, 0.0f, nullptr,
                           kernels::fwd_algo::kImplicitGemm, nullptr, 0),
               Error);
}

TEST(CStyleApiTest, WorkspaceSizeAndAlgorithm) {
  Handle handle(p100());
  const TensorDesc x{{4, 8, 12, 12}};
  const FilterDesc w{8, 8, 3, 3};
  const ConvGeometry conv{.pad_h = 1, .pad_w = 1};
  const TensorDesc y{{4, 8, 12, 12}};

  std::size_t bytes = 0;
  EXPECT_EQ(mcudnnGetConvolutionWorkspaceSize(handle, ConvKernelType::kForward,
                                              x, w, conv, y,
                                              kernels::fwd_algo::kGemm, &bytes),
            Status::kSuccess);
  EXPECT_GT(bytes, 0u);

  int algo = -1;
  EXPECT_EQ(mcudnnGetConvolutionAlgorithm(
                handle, ConvKernelType::kForward, x, w, conv, y,
                AlgoPreference::kSpecifyWorkspaceLimit, bytes, &algo),
            Status::kSuccess);
  EXPECT_GE(algo, 0);

  // Shape mismatch surfaces as kBadParam, not an exception.
  const TensorDesc bad{{4, 8, 11, 12}};
  EXPECT_EQ(mcudnnGetConvolutionWorkspaceSize(handle, ConvKernelType::kForward,
                                              x, w, conv, bad,
                                              kernels::fwd_algo::kGemm, &bytes),
            Status::kBadParam);
}

TEST(CStyleApiTest, FindReturnsRequestedCount) {
  Handle handle(p100());
  const TensorDesc x{{4, 8, 12, 12}};
  const FilterDesc w{8, 8, 3, 3};
  const ConvGeometry conv{.pad_h = 1, .pad_w = 1};
  const TensorDesc y{{4, 8, 12, 12}};
  AlgoPerf perfs[3];
  int returned = 0;
  EXPECT_EQ(mcudnnFindConvolutionAlgorithm(handle, ConvKernelType::kForward, x,
                                           w, conv, y, 3, &returned, perfs),
            Status::kSuccess);
  EXPECT_EQ(returned, 3);
  EXPECT_EQ(perfs[0].status, Status::kSuccess);
}

TEST(CStyleApiTest, ConvolutionEndToEnd) {
  Handle handle;  // host CPU
  const TensorDesc x_desc{{2, 3, 8, 8}};
  const FilterDesc w_desc{4, 3, 3, 3};
  const ConvGeometry conv{.pad_h = 1, .pad_w = 1};
  const TensorDesc y_desc{{2, 4, 8, 8}};
  Tensor x(x_desc), w(TensorShape{4, 3, 3, 3}), y(y_desc), dy(y_desc), dx(x_desc);
  Tensor dw(TensorShape{4, 3, 3, 3});
  fill_random(x, 1);
  fill_random(w, 2);
  fill_random(dy, 3);

  EXPECT_EQ(mcudnnConvolutionForward(handle, 1.0f, x_desc, x.data(), w_desc,
                                     w.data(), conv,
                                     kernels::fwd_algo::kImplicitGemm, nullptr,
                                     0, 0.0f, y_desc, y.data()),
            Status::kSuccess);
  EXPECT_EQ(mcudnnConvolutionBackwardData(
                handle, 1.0f, w_desc, w.data(), y_desc, dy.data(), conv,
                kernels::bwd_data_algo::kAlgo0, nullptr, 0, 0.0f, x_desc,
                dx.data()),
            Status::kSuccess);
  EXPECT_EQ(mcudnnConvolutionBackwardFilter(
                handle, 1.0f, x_desc, x.data(), y_desc, dy.data(), conv,
                kernels::bwd_filter_algo::kAlgo0, nullptr, 0, 0.0f, w_desc,
                dw.data()),
            Status::kSuccess);

  // Insufficient workspace comes back as a status, not a crash.
  EXPECT_EQ(mcudnnConvolutionForward(handle, 1.0f, x_desc, x.data(), w_desc,
                                     w.data(), conv, kernels::fwd_algo::kGemm,
                                     nullptr, 0, 0.0f, y_desc, y.data()),
            Status::kBadParam);
}

}  // namespace
}  // namespace ucudnn::mcudnn
